#pragma once
// §VII work-communication trade-offs: an algorithm transform that performs
// f× more work in exchange for m× less memory traffic, (W, Q) → (fW, Q/m).
//
// The paper derives (eq. (10)) the condition for a "greenup" ΔE > 1 when
// π_0 = 0.  We implement both the exact greenup/speedup under the full
// model (with constant power) and the paper's closed-form boundary.

#include <iosfwd>

#include "rme/core/machine.hpp"
#include "rme/core/model.hpp"

namespace rme {

/// The transform parameters: new work fW, new traffic Q/m  (f, m ≥ 1 for
/// a genuine work-communication trade-off; the functions accept any
/// positive values).
struct Transform {
  double f = 1.0;  ///< Work multiplier (> 1 means extra work).
  double m = 1.0;  ///< Traffic divisor (> 1 means less communication).
};

/// Speedup ΔT = T(W,Q) / T(fW, Q/m) under the overlapped time model.
[[nodiscard]] double speedup(const MachineParams& machine,
                             const KernelProfile& baseline,
                             const Transform& t) noexcept;

/// Greenup ΔE = E(W,Q) / E(fW, Q/m) under the full energy model
/// (including constant power; §VII uses π_0 = 0 as the interesting case).
[[nodiscard]] double greenup(const MachineParams& machine,
                             const KernelProfile& baseline,
                             const Transform& t) noexcept;

/// Eq. (10): with π_0 = 0, ΔE > 1  iff  f < 1 + ((m-1)/m)·(B_ε/I).
/// Returns that upper bound on f for a given baseline intensity.
[[nodiscard]] double greenup_work_bound(const MachineParams& machine,
                                        double baseline_intensity,
                                        double m) noexcept;

/// The hard upper limit as m → ∞: f < 1 + B_ε/I  (§VII).
[[nodiscard]] double greenup_work_limit(const MachineParams& machine,
                                        double baseline_intensity) noexcept;

/// §VII: if the baseline is already compute-bound in time (I ≥ B_τ), the
/// limit specializes to f < 1 + B_ε/B_τ = 1 + balance gap.
[[nodiscard]] double greenup_work_limit_compute_bound(
    const MachineParams& machine) noexcept;

/// Outcome of applying a transform, in both metrics.
enum class TradeoffOutcome {
  kSpeedupAndGreenup,  ///< faster and greener
  kSpeedupOnly,        ///< faster but burns more energy
  kGreenupOnly,        ///< greener but slower
  kNeither             ///< strictly worse in both metrics
};

[[nodiscard]] const char* to_string(TradeoffOutcome o) noexcept;

/// Classify a transform at a baseline profile (ties count as improvements).
[[nodiscard]] TradeoffOutcome classify(const MachineParams& machine,
                                       const KernelProfile& baseline,
                                       const Transform& t) noexcept;

/// Region boundaries in the (f, m) plane for a given baseline intensity
/// (the companion-TR-style analysis the paper says it is pursuing).
struct TradeoffBoundaries {
  /// Largest f with ΔT ≥ 1 at this m.  Closed form: max(1, B_τ/I) for a
  /// memory-bound baseline (the overlap hides extra work until it
  /// becomes the bottleneck); exactly 1 for a compute-bound baseline.
  double f_speedup = 1.0;
  /// Largest f with ΔE ≥ 1 ignoring constant power — eq. (10).
  double f_greenup_eq10 = 1.0;
  /// Largest f with ΔE ≥ 1 under the full model (π_0 > 0 couples E to
  /// T, so this is found numerically; equals eq. (10) when π_0 = 0).
  double f_greenup_exact = 1.0;
};

[[nodiscard]] TradeoffBoundaries tradeoff_boundaries(
    const MachineParams& machine, double baseline_intensity, double m);

std::ostream& operator<<(std::ostream& os, TradeoffOutcome o);

}  // namespace rme
