#include "rme/core/rooflines.hpp"

#include <cmath>

#include "rme/core/model.hpp"
#include "rme/core/powerline.hpp"
#include "rme/core/units.hpp"

namespace rme {

namespace {

template <class Fn>
Curve map_grid(const std::vector<double>& grid, Fn&& fn) {
  Curve curve;
  curve.reserve(grid.size());
  for (double intensity : grid) {
    curve.push_back(CurvePoint{intensity, fn(intensity)});
  }
  return curve;
}

}  // namespace

std::vector<double> log_intensity_grid(double lo, double hi,
                                       int points_per_octave) {
  std::vector<double> grid;
  if (!(lo > 0.0) || !(hi >= lo) || points_per_octave < 1) return grid;
  const double octaves = std::log2(hi / lo);
  const int n = static_cast<int>(std::ceil(octaves * points_per_octave));
  grid.reserve(static_cast<std::size_t>(n) + 1);
  for (int i = 0; i <= n; ++i) {
    grid.push_back(lo * std::exp2(octaves * i / n));
  }
  grid.back() = hi;  // avoid round-off drift on the final endpoint
  return grid;
}

Curve time_roofline(const MachineParams& m, const std::vector<double>& grid) {
  return map_grid(grid, [&](double i) { return normalized_speed(m, i); });
}

Curve time_roofline_serial(const MachineParams& m,
                           const std::vector<double>& grid) {
  return map_grid(grid,
                  [&](double i) { return normalized_speed_serial(m, i); });
}

Curve energy_arch_line(const MachineParams& m,
                       const std::vector<double>& grid) {
  return map_grid(grid, [&](double i) { return normalized_efficiency(m, i); });
}

Curve power_line(const MachineParams& m, const std::vector<double>& grid) {
  return map_grid(grid, [&](double i) { return normalized_power(m, i); });
}

Curve power_line_flop_const(const MachineParams& m,
                            const std::vector<double>& grid) {
  return map_grid(grid,
                  [&](double i) { return normalized_power_flop_const(m, i); });
}

Curve achieved_gflops_curve(const MachineParams& m,
                            const std::vector<double>& grid) {
  return map_grid(grid,
                  [&](double i) { return achieved_flops(m, i).value() / kGiga; });
}

Curve achieved_gflops_per_joule_curve(const MachineParams& m,
                                      const std::vector<double>& grid) {
  return map_grid(
      grid, [&](double i) { return achieved_flops_per_joule(m, i).value() / kGiga; });
}

Curve average_power_watts_curve(const MachineParams& m,
                                const std::vector<double>& grid) {
  return map_grid(grid, [&](double i) { return average_power(m, i).value(); });
}

}  // namespace rme
