#include "rme/core/keckler.hpp"

namespace rme {

FlopOverhead flop_overhead(EnergyPerFlop fitted_eps_flop,
                           const KecklerEstimates& k) {
  FlopOverhead f;
  f.fitted_pj = fitted_eps_flop.value() * 1e12;
  f.functional_unit_pj = k.flop_pj;
  f.overhead_pj = f.fitted_pj - f.functional_unit_pj;
  f.overhead_ratio = f.fitted_pj / f.functional_unit_pj;
  return f;
}

MemEnergyCrossCheck mem_energy_cross_check(EnergyPerByte fitted_eps_mem,
                                           EnergyPerFlop flop_overhead,
                                           double word_bytes,
                                           const KecklerEstimates& k) {
  MemEnergyCrossCheck c;
  c.overhead_pj_per_b = flop_overhead.value() * 1e12 / word_bytes;
  // L1 and L2, one read and one write each as the data climbs the
  // hierarchy: 4 SRAM accesses at ~1.75 pJ/B.
  c.cache_pj_per_b = 4.0 * k.cache_rw_pj_per_b;
  c.bottom_up_low_pj_per_b =
      k.dram_low_pj_per_b + c.overhead_pj_per_b + c.cache_pj_per_b;
  c.bottom_up_high_pj_per_b =
      k.dram_high_pj_per_b + c.overhead_pj_per_b + c.cache_pj_per_b;
  c.fitted_pj_per_b = fitted_eps_mem.value() * 1e12;
  c.unexplained_pj_per_b = c.fitted_pj_per_b - c.bottom_up_high_pj_per_b;
  c.fitted_exceeds_bottom_up =
      c.fitted_pj_per_b > c.bottom_up_high_pj_per_b;
  return c;
}

}  // namespace rme
