#pragma once
// Work-depth (concurrency-limited) time refinement — §VII limitation #1.
//
// The basic model assumes throughput-based costs, valid only with enough
// concurrency.  Following the balance-principles analysis the authors
// cite ([1], Czechowski et al.), we refine execution time with Brent's
// bound and a memory-concurrency (little's-law) term:
//
//   T_flops = (W/p + D)·τ_flop          p processors, critical path D
//   T_mem   = max(Q·τ_mem, (Q/c)·L)     c outstanding misses, latency L
//   T       = max(T_flops, T_mem).
//
// With p → ∞ (or D ≪ W/p) and c·τ_mem ≥ L this degenerates exactly to
// the throughput model of eq. (3), which tests assert.

#include "rme/core/machine.hpp"
#include "rme/core/model.hpp"

namespace rme {

/// Concurrency characterization of machine and algorithm.
struct ConcurrencyParams {
  double processors = 1.0;        ///< p: parallel work lanes.
  double depth = 0.0;             ///< D: critical-path length in flops.
  double mem_concurrency = 1.0;   ///< c: sustainable outstanding transfers.
  TimePerByte mem_latency;        ///< L: seconds per (non-overlapped) mop.
};

/// Time under the work-depth refinement (see file comment).
[[nodiscard]] TimeBreakdown predict_time_depth(
    const MachineParams& m, const KernelProfile& k,
    const ConcurrencyParams& c) noexcept;

/// Energy under the refinement: same per-op energies, but constant power
/// burns over the (longer) refined duration.
[[nodiscard]] EnergyBreakdown predict_energy_depth(
    const MachineParams& m, const KernelProfile& k,
    const ConcurrencyParams& c) noexcept;

/// Largest machine width p for which the throughput assumption holds
/// within `slack` (ratio ≥ 1): depth costs a machine-width stall per
/// critical-path step, so W·τ + D·p·τ ≤ slack·W·τ ⇒ p ≤ (slack−1)·W/D.
/// Returns +inf when depth is zero (any width is fine).
[[nodiscard]] double max_processors_for_throughput(
    const KernelProfile& k, const ConcurrencyParams& c,
    double slack = 1.01) noexcept;

}  // namespace rme
