#pragma once
// Multi-level memory-hierarchy energy extension (§V-C and §VII
// limitation #2).
//
// The two-level model underestimated measured FMM energy by ~33% until
// the authors added a per-byte cache-access term (fitted at 187 pJ/B for
// combined L1+L2 traffic).  This module generalizes eq. (2) to
//     E = W·ε_flop + Σ_l Q_l·ε_l + π_0·T,
// where level 0 is DRAM (the model's ε_mem) and deeper entries are cache
// levels with their own per-byte costs and traffic.

#include <string>
#include <vector>

#include "rme/core/machine.hpp"
#include "rme/core/model.hpp"

namespace rme {

/// Per-level traffic with its energy cost.
struct LevelTraffic {
  std::string name;    ///< e.g. "DRAM", "L2", "L1".
  double bytes = 0.0;  ///< Traffic observed at this level.
  EnergyPerByte energy_per_byte;  ///< ε_l [J/B].

  [[nodiscard]] Joules joules() const noexcept {
    return ByteCount{bytes} * energy_per_byte;
  }
};

/// A kernel profile extended with per-level traffic.  `flops` is W; the
/// level vector replaces the single Q of the basic model.  Execution
/// *time* still follows the two-level model using DRAM traffic (the
/// bandwidth-limiting level); caches affect energy only, as in §V-C.
struct HierarchicalProfile {
  double flops = 0.0;
  std::vector<LevelTraffic> levels;

  /// DRAM (level 0) traffic, used for the time model.  Zero if absent.
  [[nodiscard]] double dram_bytes() const noexcept {
    return levels.empty() ? 0.0 : levels.front().bytes;
  }
};

/// Energy breakdown for the multi-level model.
struct HierarchicalEnergy {
  Joules flops_joules;
  std::vector<Joules> level_joules;  ///< Parallel to profile.levels.
  Joules const_joules;
  Joules total_joules;
};

/// E = W·ε_flop + Σ_l Q_l·ε_l + π_0·T, with T from the two-level time
/// model on DRAM traffic.  The DRAM level's ε comes from the profile (so
/// callers may override the machine's ε_mem with a fitted value).
[[nodiscard]] HierarchicalEnergy predict_energy_multilevel(
    const MachineParams& m, const HierarchicalProfile& p) noexcept;

/// The paper's fitted cache-access cost for the GTX 580 (§V-C): about
/// 187 pJ per byte of combined L1+L2 traffic.
inline constexpr EnergyPerByte kPaperCacheEnergyPerByte{187.0e-12};

/// "Effective intensity" of a hierarchical profile: W over the
/// energy-weighted traffic Σ Q_l·ε_l / ε_mem — the intensity a two-level
/// model would need to charge the same communication energy.
[[nodiscard]] double effective_intensity(const MachineParams& m,
                                         const HierarchicalProfile& p) noexcept;

/// A machine whose per-byte communication energy charges cache transit:
/// each DRAM byte is assumed to cross the cache interfaces
/// `cache_crossings` times at `cache_energy_per_byte` each, so
///   ε_mem' = ε_mem + cache_crossings · ε_cache.
/// The multi-level "arch line" is then exactly the two-level arch line
/// of this augmented machine — which lowers measured energy-efficiency
/// and raises the energy-balance point (the §V-C effect folded back
/// into the §II model).
[[nodiscard]] MachineParams with_cache_charge(
    const MachineParams& m, double cache_crossings,
    EnergyPerByte cache_energy_per_byte = kPaperCacheEnergyPerByte) noexcept;

}  // namespace rme
