#pragma once
// Trade-off metrics beyond raw time and energy (§VI "Metrics").
//
// The paper reasons directly about T, E, and P, but notes that
// multiobjective optimization often uses fused metrics: the
// energy-delay product (EDP) and its generalizations E·T^w (Gonzalez &
// Horowitz; Bekas & Curioni's FTTSE), flops-per-Watt (the Green500
// metric), and The Green Index.  This module evaluates those metrics
// under the model, so one can ask *which frequency, intensity, or
// transform a given metric prefers* — and when the metrics disagree.

#include <vector>

#include "rme/core/dvfs.hpp"
#include "rme/core/machine.hpp"
#include "rme/core/model.hpp"

namespace rme {

/// Generalized energy-delay product E·T^w.  w = 0 is energy, w = 1 the
/// classic EDP, w = 2 ED²P (favoring speed ever more strongly).
[[nodiscard]] double energy_delay_product(const MachineParams& m,
                                          const KernelProfile& k,
                                          double delay_weight = 1.0) noexcept;

/// Flops per Watt = flops per Joule per second... dimensionally it *is*
/// flops/Joule scaled by nothing: FLOP/s per Watt == FLOP/J.  Exposed
/// under its Green500 name for clarity at call sites.
[[nodiscard]] FlopsPerJoule flops_per_watt(const MachineParams& m,
                                           double intensity) noexcept;

// Dimension proof of the Green500 identity the comment above states.
static_assert(
    std::is_same_v<decltype(FlopsPerSecond{} / Watts{}), FlopsPerJoule>,
    "(flop/s) / (J/s) = flop/J");

/// Generalized EDP and the fused metrics below are *not* dimensionful
/// quantities (E·T^w has fractional dimensions for non-integer w), so
/// they are plain doubles by design — compare them only to themselves.

/// A metric choice for optimization comparisons.
enum class Metric {
  kTime,    ///< minimize T
  kEnergy,  ///< minimize E
  kEdp,     ///< minimize E·T
  kEd2p,    ///< minimize E·T²
};

[[nodiscard]] const char* to_string(Metric metric) noexcept;

/// Value of a metric for a kernel (lower is better for all of them).
[[nodiscard]] double metric_value(Metric metric, const MachineParams& m,
                                  const KernelProfile& k) noexcept;

/// The DVFS operating point a metric prefers (grid argmin over the
/// model's frequency range).  Race-to-halt corresponds to kTime always
/// choosing max_ratio; the interesting question is what kEnergy and
/// kEdp choose (§II-D's race-to-halt discussion, generalized).
[[nodiscard]] DvfsPoint metric_optimal_frequency(Metric metric,
                                                 const MachineParams& nominal,
                                                 const DvfsModel& dvfs,
                                                 const KernelProfile& k,
                                                 int steps = 64);

/// Minimum intensity at which a metric reaches `fraction` of its best
/// (I → ∞) value — a "how much locality do I need" query per metric.
/// Returns +inf if the fraction is not reachable on the grid.
[[nodiscard]] double intensity_for_fraction(Metric metric,
                                            const MachineParams& m,
                                            double fraction,
                                            double i_lo = 1e-3,
                                            double i_hi = 1e6);

}  // namespace rme
