#pragma once
// Heterogeneous two-device extension.
//
// The paper's lineage is the Amdahl-style heterogeneous analyses it
// cites ([4]-[6]: Hill & Marty, Woo & Lee, Multi-Amdahl), which ask how
// to divide work between unlike devices.  With the energy-roofline
// characterization in hand the question becomes concrete: split a
// (W, Q) workload across two machines running concurrently and compare
// the split that minimizes *time* with the one that minimizes *energy*.
// When the devices' balance points and constant powers differ, the two
// optima part ways — the balance-gap story at system scale.

#include "rme/core/machine.hpp"
#include "rme/core/model.hpp"

namespace rme {

/// What an idle device burns while the other one finishes.
enum class IdlePolicy {
  kAlwaysOn,    ///< Both devices burn π_0 for the whole makespan.
  kPowerGated,  ///< Each device burns π_0 only while it is busy.
};

[[nodiscard]] const char* to_string(IdlePolicy policy) noexcept;

/// A concurrent split: fraction `alpha` of both W and Q to device A,
/// the rest to device B.
struct HeteroSplit {
  double alpha = 0.5;
  Seconds seconds;  ///< Makespan max(T_A, T_B).
  Joules joules;    ///< Total energy under the idle policy.
  Seconds device_a_seconds;
  Seconds device_b_seconds;
};

/// Evaluates a specific split.  alpha ∈ [0, 1]; a device receiving zero
/// work contributes zero busy time (and, under kPowerGated, no constant
/// energy).
[[nodiscard]] HeteroSplit evaluate_split(const MachineParams& a,
                                         const MachineParams& b,
                                         const KernelProfile& k, double alpha,
                                         IdlePolicy policy) noexcept;

/// The split minimizing makespan.  For this model the makespan is
/// piecewise monotone in alpha with a unique minimum where the two
/// devices finish together (or at a boundary); found by bisection on
/// T_A(alpha) − T_B(alpha).
[[nodiscard]] HeteroSplit time_optimal_split(const MachineParams& a,
                                             const MachineParams& b,
                                             const KernelProfile& k,
                                             IdlePolicy policy) noexcept;

/// The split minimizing total energy (grid + local refinement; the
/// energy landscape under kAlwaysOn couples the devices through the
/// makespan, so boundaries 0/1 are always candidates).
[[nodiscard]] HeteroSplit energy_optimal_split(const MachineParams& a,
                                               const MachineParams& b,
                                               const KernelProfile& k,
                                               IdlePolicy policy,
                                               int grid = 512) noexcept;

/// True when the time- and energy-optimal alphas differ by more than
/// `tol` — the heterogeneous analogue of the balance gap.
[[nodiscard]] bool split_optima_disagree(const MachineParams& a,
                                         const MachineParams& b,
                                         const KernelProfile& k,
                                         IdlePolicy policy,
                                         double tol = 0.01) noexcept;

}  // namespace rme
