#include "rme/core/powercap.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rme/core/powerline.hpp"

namespace rme {

namespace {

double rate_scale(const MachineParams& m, double intensity,
                  Watts cap_watts) noexcept {
  const Watts dyn = average_power(m, intensity) - m.const_power;
  const Watts headroom = cap_watts - m.const_power;
  if (headroom <= Watts{0.0}) return 0.0;
  if (dyn <= headroom) return 1.0;
  return headroom / dyn;
}

}  // namespace

CappedRun run_with_cap(const MachineParams& m, const KernelProfile& k,
                       Watts cap_watts) {
  CappedRun r;
  const double s = rate_scale(m, k.intensity(), cap_watts);
  if (s == 0.0) {
    r.feasible = false;
    r.capped = true;
    r.scale = 0.0;
    r.seconds = Seconds{std::numeric_limits<double>::infinity()};
    r.joules = Joules{std::numeric_limits<double>::infinity()};
    r.avg_watts = cap_watts;
    return r;
  }
  const TimeBreakdown t = predict_time(m, k);
  r.scale = s;
  r.capped = s < 1.0;
  r.seconds = t.total_seconds / s;
  const Joules dynamic_joules =
      k.work() * m.energy_per_flop + k.traffic() * m.energy_per_byte;
  r.joules = dynamic_joules + m.const_power * r.seconds;
  r.avg_watts = r.joules / r.seconds;
  return r;
}

double capped_normalized_speed(const MachineParams& m, double intensity,
                               Watts cap_watts) noexcept {
  return normalized_speed(m, intensity) * rate_scale(m, intensity, cap_watts);
}

double capped_normalized_efficiency(const MachineParams& m, double intensity,
                                    Watts cap_watts) {
  const KernelProfile k = KernelProfile::from_intensity(intensity);
  const CappedRun r = run_with_cap(m, k, cap_watts);
  if (!r.feasible) return 0.0;
  const Joules ideal = k.work() * m.actual_energy_per_flop();
  return ideal / r.joules;
}

Watts capped_average_power(const MachineParams& m, double intensity,
                           Watts cap_watts) noexcept {
  return min(average_power(m, intensity), cap_watts);
}

double cap_violation_onset(const MachineParams& m, Watts cap_watts) noexcept {
  // P(I) rises monotonically on (0, B_tau] and falls on [B_tau, inf).
  if (max_power(m) <= cap_watts) return -1.0;
  // Solve on the rising branch: pf*(I + B_eps)/B_tau + pi0 = cap.
  const Watts pf = m.flop_power();
  const double onset =
      ((cap_watts - m.const_power) / pf) * m.time_balance() -
      m.energy_balance();
  return std::max(onset, 0.0);
}

}  // namespace rme
