#pragma once
// The optimization advisor: the paper's §II-D reading of rooflines and
// arch lines ("a roofline or arch line provides two pieces of
// information: the target performance tuning goal, and by how much
// intensity must increase to improve performance by a desired amount")
// as a callable API.
//
// Given a machine and a kernel, the advisor reports where the kernel
// sits in both metrics, how far the ceilings are, what intensity would
// reach a target fraction of each ceiling, and — for algorithms with a
// known Q(Z) law — how much fast memory that intensity requires.

#include <string>

#include "rme/core/algorithms.hpp"
#include "rme/core/machine.hpp"
#include "rme/core/metrics.hpp"
#include "rme/core/model.hpp"

namespace rme {

/// What the rooflines say about one kernel on one machine.
struct Advice {
  double intensity = 0.0;
  Bound bound_in_time = Bound::kMemory;
  Bound bound_in_energy = Bound::kMemory;
  bool classifications_differ = false;

  /// Achieved fraction of each ceiling at the current intensity.
  double speed_fraction = 0.0;
  double efficiency_fraction = 0.0;

  /// Headroom: the factor still available under each ceiling (≥ 1).
  double speed_headroom = 1.0;
  double efficiency_headroom = 1.0;

  /// The intensity needed to reach `target_fraction` of each ceiling —
  /// the §II-D "how much must intensity increase" numbers.
  double intensity_for_target_speed = 0.0;
  double intensity_for_target_efficiency = 0.0;

  /// Which metric's natural milestone needs more intensity — the §II-D
  /// comparison: reaching the time ceiling needs I ≥ B_τ; being within
  /// 2× of the energy ceiling needs I at the effective balance point.
  /// kEnergy when the effective balance exceeds B_τ (the balance-gap
  /// future); kTime on today's constant-power-dominated machines.
  Metric harder_goal = Metric::kTime;

  /// One-paragraph human-readable guidance.
  std::string summary;
};

/// Analyze a kernel on a machine against a target fraction of peak
/// (default: within 90% of each ceiling).
[[nodiscard]] Advice advise(const MachineParams& m, const KernelProfile& k,
                            double target_fraction = 0.9);

/// Fast-memory sizing advice for an algorithm with a Q(n, Z) law: the Z
/// needed to reach the target fraction of each ceiling (negative if the
/// algorithm's intensity cannot reach it at any Z, e.g. reductions).
struct CapacityAdvice {
  double z_for_target_speed = -1.0;
  double z_for_target_efficiency = -1.0;
};

[[nodiscard]] CapacityAdvice advise_capacity(const MachineParams& m,
                                             const AlgorithmModel& alg,
                                             double n,
                                             double target_fraction = 0.9,
                                             double word_bytes = 8.0);

}  // namespace rme
