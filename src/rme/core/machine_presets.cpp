#include "rme/core/machine_presets.hpp"

#include "rme/core/units.hpp"

namespace rme::presets {

MachineParams fermi_table2() {
  MachineParams m;
  m.name = "NVIDIA Fermi (Table II, Keckler et al.)";
  m.time_per_flop = seconds_per_flop_from_gflops(515.0);  // ~1.9 ps/flop
  m.time_per_byte = seconds_per_byte_from_gbs(144.0);     // ~6.9 ps/B
  m.energy_per_flop = picojoules_per_flop(25.0);                       // 25 pJ/flop
  m.energy_per_byte = picojoules_per_byte(360.0);                      // 360 pJ/B
  m.const_power = watts(0.0);
  return m;
}

MachineParams gtx580(Precision p) {
  MachineParams m;
  if (p == Precision::kSingle) {
    m.name = "NVIDIA GTX 580 (single)";
    m.time_per_flop = seconds_per_flop_from_gflops(1581.06);
    m.energy_per_flop = picojoules_per_flop(99.7);  // eps_s, Table IV
  } else {
    m.name = "NVIDIA GTX 580 (double)";
    m.time_per_flop = seconds_per_flop_from_gflops(197.63);
    m.energy_per_flop = picojoules_per_flop(212.0);  // eps_d, Table IV
  }
  m.time_per_byte = seconds_per_byte_from_gbs(192.4);
  m.energy_per_byte = picojoules_per_byte(513.0);  // Table IV
  m.const_power = watts(122.0);              // Table IV
  return m;
}

MachineParams i7_950(Precision p) {
  MachineParams m;
  if (p == Precision::kSingle) {
    m.name = "Intel Core i7-950 (single)";
    m.time_per_flop = seconds_per_flop_from_gflops(106.56);
    m.energy_per_flop = picojoules_per_flop(371.0);  // eps_s, Table IV
  } else {
    m.name = "Intel Core i7-950 (double)";
    m.time_per_flop = seconds_per_flop_from_gflops(53.28);
    m.energy_per_flop = picojoules_per_flop(670.0);  // eps_d, Table IV
  }
  m.time_per_byte = seconds_per_byte_from_gbs(25.6);
  m.energy_per_byte = picojoules_per_byte(795.0);  // Table IV
  m.const_power = watts(122.0);              // Table IV
  return m;
}

PlatformPeaks table3_cpu() noexcept {
  return PlatformPeaks{"CPU", "Intel Core i7-950", 106.56, 53.28, 25.6,
                       Watts{130.0}};
}

PlatformPeaks table3_gpu() noexcept {
  return PlatformPeaks{"GPU", "NVIDIA GeForce GTX 580", 1581.06, 197.63, 192.4,
                       Watts{244.0}};
}

}  // namespace rme::presets
