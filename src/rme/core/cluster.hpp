#pragma once
// Distributed-memory extension: the energy roofline with a network
// channel.
//
// The paper's co-design agenda (its §I cites the authors' balance-
// principles and exascale-FFT communication work [1], [3]) treats
// communication channels uniformly: each has a time cost and an energy
// cost per unit of traffic.  A cluster adds a third channel — the
// interconnect — to the two-level node model:
//
//   T_node = max(W·τ_flop, Q·τ_mem, M·τ_net)        (overlap)
//   E_node = W·ε_flop + Q·ε_mem + M·ε_net + π0·T
//   E_total = p · E_node                             (p symmetric nodes)
//
// where M is the per-node network traffic.  Each channel contributes
// its own balance point (flops per network byte), so an algorithm can
// be compute-, memory-, or NETWORK-bound — in time and, separately, in
// energy.  Halo-exchange, allreduce, and 3-D-FFT traffic models supply
// the M(n, p) of §I's motivating workloads.

#include <string>

#include "rme/core/machine.hpp"
#include "rme/core/model.hpp"

namespace rme {

/// A symmetric cluster: p identical nodes plus an interconnect.
struct ClusterParams {
  std::string name;
  MachineParams node;       ///< Per-node machine (incl. per-node π_0).
  double nodes = 1.0;       ///< p.
  TimePerByte time_per_net_byte;    ///< τ_net [s/B], per node, throughput.
  EnergyPerByte energy_per_net_byte;  ///< ε_net [J/B] (NIC + switch share).

  /// Network time-balance: flops per network byte at which compute and
  /// network time break even on a node.
  [[nodiscard]] double net_time_balance() const noexcept {
    // rme-lint: allow(value-escape: balance point is the raw intensity scalar by policy)
    return (time_per_net_byte / node.time_per_flop).value();
  }
  /// Network energy-balance: ε_net / ε_flop [flop/B].
  [[nodiscard]] double net_energy_balance() const noexcept {
    // rme-lint: allow(value-escape: balance point is the raw intensity scalar by policy)
    return (energy_per_net_byte / node.energy_per_flop).value();
  }
};

/// Per-node workload characterization: arithmetic, local memory
/// traffic, and network traffic.
struct DistributedProfile {
  double flops = 0.0;      ///< W per node.
  double mem_bytes = 0.0;  ///< Q per node.
  double net_bytes = 0.0;  ///< M per node.

  [[nodiscard]] double mem_intensity() const noexcept {
    return flops / mem_bytes;
  }
  [[nodiscard]] double net_intensity() const noexcept {
    return flops / net_bytes;
  }
};

/// Which channel bounds a distributed execution.
enum class Channel { kCompute, kMemory, kNetwork };

[[nodiscard]] const char* to_string(Channel c) noexcept;

/// Three-channel time/energy prediction for one node (all nodes are
/// symmetric, so makespan equals node time).
struct DistributedTime {
  Seconds flops_seconds;
  Seconds mem_seconds;
  Seconds net_seconds;
  Seconds total_seconds;
  Channel bound = Channel::kCompute;
};

struct DistributedEnergy {
  Joules flops_joules;  ///< Whole-cluster (p·node) values.
  Joules mem_joules;
  Joules net_joules;
  Joules const_joules;
  Joules total_joules;
};

[[nodiscard]] DistributedTime predict_time(const ClusterParams& c,
                                           const DistributedProfile& w) noexcept;
[[nodiscard]] DistributedEnergy predict_energy(
    const ClusterParams& c, const DistributedProfile& w) noexcept;

// --- Traffic models for §I's motivating workloads -------------------------

/// 3-D halo exchange (stencil): per node, n_local cells arranged in a
/// cube exchange 6 faces of (n_local^(2/3)) cells, `word` bytes each.
[[nodiscard]] double halo_net_bytes(double n_local, double word = 8.0) noexcept;

/// Ring/recursive-doubling allreduce of a length-v vector: ~2·v·word
/// bytes per node, independent of p (bandwidth-optimal algorithms).
[[nodiscard]] double allreduce_net_bytes(double vector_len,
                                         double word = 8.0) noexcept;

/// Distributed 3-D FFT of n points on p nodes (one all-to-all
/// transpose): each node sends its whole local slab, (n/p)·word bytes.
[[nodiscard]] double fft_transpose_net_bytes(double n, double p,
                                             double word = 8.0) noexcept;

/// Weak-scaling sweep: the node count at which a workload whose local
/// problem is fixed becomes network-bound in time (first p where
/// net time ≥ max(compute, memory) time), or -1 if never within p_max.
/// `net_bytes_of_p` maps node count to per-node network traffic.
[[nodiscard]] double network_bound_onset(
    const ClusterParams& cluster, double flops, double mem_bytes,
    double (*net_bytes_of_p)(double n_local, double p), double n_local,
    double p_max = 1e6);

}  // namespace rme
