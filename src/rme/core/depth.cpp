#include "rme/core/depth.hpp"

#include <algorithm>
#include <limits>

namespace rme {

TimeBreakdown predict_time_depth(const MachineParams& m,
                                 const KernelProfile& k,
                                 const ConcurrencyParams& c) noexcept {
  TimeBreakdown t;
  // The throughput model charges W·τ_flop for the machine's full width;
  // with p explicit lanes each flop-lane sustains p/(peak width) — we keep
  // τ_flop as the *aggregate* throughput cost and add the serial depth term.
  t.flops_seconds =
      (k.work() / c.processors) * (m.time_per_flop * c.processors) +
      FlopCount{c.depth} * (m.time_per_flop * c.processors);
  // Equivalent: W·τ_flop + D·p·τ_flop — depth costs a full machine-width
  // stall per critical-path step.
  const Seconds bw_seconds = k.traffic() * m.time_per_byte;
  const Seconds latency_seconds =
      c.mem_concurrency > 0.0
          ? (k.traffic() / c.mem_concurrency) * c.mem_latency
          : Seconds{std::numeric_limits<double>::infinity()};
  t.mem_seconds = max(bw_seconds, latency_seconds);
  t.total_seconds = max(t.flops_seconds, t.mem_seconds);
  return t;
}

EnergyBreakdown predict_energy_depth(const MachineParams& m,
                                     const KernelProfile& k,
                                     const ConcurrencyParams& c) noexcept {
  EnergyBreakdown e;
  e.flops_joules = k.work() * m.energy_per_flop;
  e.mem_joules = k.traffic() * m.energy_per_byte;
  e.const_joules = m.const_power * predict_time_depth(m, k, c).total_seconds;
  e.total_joules = e.flops_joules + e.mem_joules + e.const_joules;
  return e;
}

double max_processors_for_throughput(const KernelProfile& k,
                                     const ConcurrencyParams& c,
                                     double slack) noexcept {
  if (c.depth <= 0.0) return std::numeric_limits<double>::infinity();
  // (W + D·p) ≤ slack·W  ⇒  p ≤ (slack − 1)·W / D.  Any p at or below
  // this keeps the depth term within the slack.
  return (slack - 1.0) * k.flops / c.depth;
}

}  // namespace rme
