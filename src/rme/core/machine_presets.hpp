#pragma once
// Machine presets encoding the paper's Tables II, III, and IV.
//
// Table II gives the illustrative NVIDIA Fermi parameters from Keckler et
// al. used to draw Fig. 2.  Table III gives the manufacturer peak rates of
// the two experimental platforms; Table IV gives the energy coefficients
// the authors *fitted* on those platforms via eq. (9).  Combining III and
// IV yields a complete MachineParams per (platform, precision), which is
// what Figs. 4 and 5 plot and what our simulator uses as ground truth.

#include "rme/core/machine.hpp"

namespace rme::presets {

/// Table II: NVIDIA "Fermi" GPU illustration (Keckler et al. [14]).
/// τ_flop = (515 Gflop/s)^-1, τ_mem = (144 GB/s)^-1, ε_flop = 25 pJ/flop,
/// ε_mem = 360 pJ/B, π_0 = 0.  B_τ ≈ 3.6 flop/B, B_ε = 14.4 flop/B.
[[nodiscard]] MachineParams fermi_table2();

/// Tables III+IV: NVIDIA GeForce GTX 580 (GPU-only power).
/// Peaks: 1581.06 GFLOP/s single / 197.63 double, 192.4 GB/s.
/// Fitted: ε_s = 99.7 pJ/flop, ε_d = 212 pJ/flop, ε_mem = 513 pJ/B,
/// π_0 = 122 W.
[[nodiscard]] MachineParams gtx580(Precision p);

/// Tables III+IV: Intel Core i7-950 (desktop, Nehalem, 4 cores).
/// Peaks: 106.56 GFLOP/s single / 53.28 double, 25.6 GB/s.
/// Fitted: ε_s = 371 pJ/flop, ε_d = 670 pJ/flop, ε_mem = 795 pJ/B,
/// π_0 = 122 W.
[[nodiscard]] MachineParams i7_950(Precision p);

/// §V-B: NVIDIA's reported maximum board power for the GTX 580.  The
/// model (power line) exceeds this near I = B_τ in single precision,
/// which is the paper's explanation for the measured roofline departure
/// in Fig. 4b / Fig. 5b.
inline constexpr double kGtx580PowerCapWatts = 244.0;

/// Table III TDP column (chip only) — both platforms list 130 W.
inline constexpr double kTableIIITdpWatts = 130.0;

/// Measured GTX 580 idle power reported in §V-A (powered on, idle).
inline constexpr double kGtx580IdleWatts = 39.6;

/// Peak rates of Table III in natural units, for reporting.
struct PlatformPeaks {
  const char* device;
  const char* model;
  double gflops_single;
  double gflops_double;
  double bandwidth_gbs;
  Watts tdp_watts;
};

[[nodiscard]] PlatformPeaks table3_cpu() noexcept;
[[nodiscard]] PlatformPeaks table3_gpu() noexcept;

}  // namespace rme::presets
