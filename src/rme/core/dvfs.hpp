#pragma once
// DVFS extension and race-to-halt analysis.
//
// §II-D and §VII argue that when B_τ > B̂_ε, race-to-halt (run at maximum
// frequency, then idle) is the right first-order energy strategy, and that
// a large constant power π_0 is what makes this true today.  This module
// makes that argument executable: it scales a MachineParams with a simple
// voltage-frequency model and evaluates E(f) for a kernel, exposing the
// frequency that minimizes energy and the condition under which f_max is
// optimal.

#include <vector>

#include "rme/core/machine.hpp"
#include "rme/core/model.hpp"

namespace rme {

/// Voltage/frequency scaling model.  Frequency ratios are relative to
/// nominal (1.0).  Voltage follows V(r) = v_floor + (1 − v_floor)·r in
/// normalized units, the standard near-linear DVFS approximation.
///
/// Component scaling at ratio r:
///   τ_flop   ∝ 1/r                  (core clock)
///   τ_mem    unchanged               (memory clock domain is separate)
///   ε_flop   ∝ V(r)²                (CV² switching energy per op)
///   ε_mem    unchanged               (DRAM + off-chip interface)
///   π_0      = fixed_fraction·π_0                      (board, uncore, DRAM
///                                                       refresh, PSU loss)
///            + static_fraction·π_0·V(r)                (core leakage ≈ ∝ V)
///            + remaining·π_0·r·V(r)²                   (clock tree ≈ ∝ f·V²)
///
/// The measured π_0 of Table IV (122 W on both platforms) is whole-system
/// constant power, most of which does not live in the scaled core domain —
/// hence the large default fixed fraction.  This is exactly what makes
/// race-to-halt optimal on today's machines (§V-B) in this model.
struct DvfsModel {
  double v_floor = 0.6;          ///< Normalized voltage at r → 0.
  double fixed_fraction = 0.7;   ///< Fraction of π_0 outside the DVFS domain.
  double static_fraction = 0.2;  ///< Fraction of π_0 that is leakage-like.
  double min_ratio = 0.25;       ///< Lowest supported frequency ratio.
  double max_ratio = 1.0;        ///< Highest supported frequency ratio.

  [[nodiscard]] double voltage(double ratio) const noexcept {
    return v_floor + (1.0 - v_floor) * ratio;
  }
};

/// Machine parameters rescaled to core-frequency ratio `r`.
[[nodiscard]] MachineParams at_frequency(const MachineParams& nominal,
                                         const DvfsModel& dvfs,
                                         double ratio) noexcept;

/// One point of the E(f) / T(f) trade-off sweep.
struct DvfsPoint {
  double ratio = 1.0;  ///< Frequency ratio relative to nominal.
  Seconds seconds;
  Joules joules;
  Watts avg_watts;
};

/// Sweep frequency ratios (inclusive grid of `steps` points between the
/// model's min and max ratio) for one kernel profile.
[[nodiscard]] std::vector<DvfsPoint> frequency_sweep(
    const MachineParams& nominal, const DvfsModel& dvfs,
    const KernelProfile& k, int steps = 16);

/// The frequency ratio minimizing energy for this kernel (grid argmin).
[[nodiscard]] DvfsPoint min_energy_point(const MachineParams& nominal,
                                         const DvfsModel& dvfs,
                                         const KernelProfile& k,
                                         int steps = 64);

/// True if running flat-out (r = max_ratio) minimizes energy — i.e.
/// race-to-halt is optimal for this kernel on this machine.
[[nodiscard]] bool race_to_halt_optimal(const MachineParams& nominal,
                                        const DvfsModel& dvfs,
                                        const KernelProfile& k,
                                        int steps = 64);

}  // namespace rme
