#pragma once
// Compile-time dimensional algebra for the energy-roofline model.
//
// The model (Choi, Bedard, Fowler, Vuduc — "A Roofline Model of Energy",
// IPDPS 2013) mixes quantities with easily-confused dimensions: time per
// flop (τ), energy per byte (ε), flops per Joule, Joules per second, and
// the balance points B_τ / B_ε that share the flop-per-byte dimension.
// Every quantity here carries its dimension as a template parameter —
// four integer exponents over the model's base dimensions
//
//     time [s] · energy [J] · work [flop] · traffic [byte]
//
// so products and quotients *derive* their dimension at compile time
// (J / s = W, flop / byte = intensity, s / flop = τ) and dimension
// mix-ups (adding Joules to seconds, passing a τ where an ε is
// expected) are build errors, not silent reproduction bugs.
//
// Escape-hatch policy (see docs/API.md "Units & dimensional safety"):
// `.value()` unwraps a quantity to a raw double.  It is reserved for
// numeric kernels (matrix assembly, integrators, statistics) and for
// normalized model scalars (normalized speed/efficiency, the intensity
// sweep axis), which circulate as plain `double` by design.  Public
// struct members and API parameters carry typed quantities; the
// `tools/rme_lint` checker enforces that rule over all public headers.

#include <cmath>
#include <compare>
#include <cstdint>
#include <type_traits>

namespace rme {

/// A dimension: integer exponents over (time, energy, work, traffic).
///
/// `Dim<1,0,-1,0>` is s/flop (τ_flop); `Dim<-1,1,0,0>` is J/s = W.
template <int TimeExp, int EnergyExp, int WorkExp, int TrafficExp>
struct Dim {
  static constexpr int time = TimeExp;
  static constexpr int energy = EnergyExp;
  static constexpr int work = WorkExp;
  static constexpr int traffic = TrafficExp;
};

/// The trivial dimension: plain numbers.
using Dimensionless = Dim<0, 0, 0, 0>;

/// Dimension of a product / quotient: exponents add / subtract.
template <class A, class B>
using DimProduct = Dim<A::time + B::time, A::energy + B::energy,
                       A::work + B::work, A::traffic + B::traffic>;
template <class A, class B>
using DimQuotient = Dim<A::time - B::time, A::energy - B::energy,
                        A::work - B::work, A::traffic - B::traffic>;
template <class A>
using DimInverse = DimQuotient<Dimensionless, A>;

template <class D>
class Quantity;

namespace detail {
/// Maps a derived dimension to its carrier type: `Quantity<D>` in
/// general, but a plain `double` when the dimensions cancel — so the
/// ratio of two same-dimension quantities is directly usable as a
/// number, and no `Quantity<Dimensionless>` ever exists.
template <class D>
struct QuantityResult {
  using type = Quantity<D>;
  static constexpr type make(double v) noexcept { return type{v}; }
};
template <>
struct QuantityResult<Dimensionless> {
  using type = double;
  static constexpr double make(double v) noexcept { return v; }
};
}  // namespace detail

/// The carrier type for dimension `D` (double when dimensionless).
template <class D>
using QuantityOf = typename detail::QuantityResult<D>::type;

/// A dimension-tagged floating-point quantity.
///
/// Closed operations (+, -, scaling by a plain number) require matching
/// dimensions.  Cross-dimension products and quotients are generic: the
/// result's dimension is derived from the operands' exponents, and a
/// fully cancelled dimension collapses to `double`.
template <class D>
class Quantity {
 public:
  using dimension = D;

  constexpr Quantity() noexcept = default;
  constexpr explicit Quantity(double v) noexcept : value_(v) {}

  /// Escape hatch to the raw number — for numeric kernels and
  /// normalized scalars only; see the policy note in the file header.
  [[nodiscard]] constexpr double value() const noexcept { return value_; }

  constexpr auto operator<=>(const Quantity&) const noexcept = default;

  constexpr Quantity& operator+=(Quantity o) noexcept {
    value_ += o.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) noexcept {
    value_ -= o.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) noexcept {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) noexcept {
    value_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) noexcept {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) noexcept {
    return Quantity{a.value_ - b.value_};
  }
  friend constexpr Quantity operator-(Quantity a) noexcept {
    return Quantity{-a.value_};
  }
  friend constexpr Quantity operator*(Quantity a, double s) noexcept {
    return Quantity{a.value_ * s};
  }
  friend constexpr Quantity operator*(double s, Quantity a) noexcept {
    return Quantity{s * a.value_};
  }
  friend constexpr Quantity operator/(Quantity a, double s) noexcept {
    return Quantity{a.value_ / s};
  }
  /// Inverse quantity: 1/τ_flop = peak flop rate, 1/ε̂_flop = flop/J.
  friend constexpr QuantityOf<DimInverse<D>> operator/(double s,
                                                       Quantity a) noexcept {
    return detail::QuantityResult<DimInverse<D>>::make(s / a.value_);
  }

  /// Product with exponent-derived dimension; cancellation yields double.
  template <class D2>
  friend constexpr QuantityOf<DimProduct<D, D2>> operator*(
      Quantity a, Quantity<D2> b) noexcept {
    return detail::QuantityResult<DimProduct<D, D2>>::make(a.value_ *
                                                           b.value());
  }
  /// Quotient with exponent-derived dimension; a same-dimension ratio is
  /// a plain number.
  template <class D2>
  friend constexpr QuantityOf<DimQuotient<D, D2>> operator/(
      Quantity a, Quantity<D2> b) noexcept {
    return detail::QuantityResult<DimQuotient<D, D2>>::make(a.value_ /
                                                            b.value());
  }

 private:
  double value_ = 0.0;
};

/// Same-dimension min/max, kept typed (std::max on .value() loses the
/// dimension; eq. (1)'s T = max(T_flops, T_mem) should not).
template <class D>
[[nodiscard]] constexpr Quantity<D> max(Quantity<D> a, Quantity<D> b) noexcept {
  return a.value() >= b.value() ? a : b;
}
template <class D>
[[nodiscard]] constexpr Quantity<D> min(Quantity<D> a, Quantity<D> b) noexcept {
  return a.value() <= b.value() ? a : b;
}

// --- The model's named dimensions ------------------------------------------
//
//                         time  energy  work  traffic
using Seconds = Quantity<Dim<1, 0, 0, 0>>;
using Joules = Quantity<Dim<0, 1, 0, 0>>;
using FlopCount = Quantity<Dim<0, 0, 1, 0>>;     ///< W [flop]
using ByteCount = Quantity<Dim<0, 0, 0, 1>>;     ///< Q [byte]
using Watts = Quantity<Dim<-1, 1, 0, 0>>;        ///< J/s
using Hertz = Quantity<Dim<-1, 0, 0, 0>>;        ///< 1/s (sample rates)
using Intensity = Quantity<Dim<0, 0, 1, -1>>;    ///< I, B_τ, B_ε [flop/byte]
using TimePerFlop = Quantity<Dim<1, 0, -1, 0>>;  ///< τ_flop [s/flop]
using TimePerByte = Quantity<Dim<1, 0, 0, -1>>;  ///< τ_mem [s/byte]
using EnergyPerFlop = Quantity<Dim<0, 1, -1, 0>>;  ///< ε_flop [J/flop]
using EnergyPerByte = Quantity<Dim<0, 1, 0, -1>>;  ///< ε_mem [J/byte]
using FlopsPerSecond = Quantity<Dim<-1, 0, 1, 0>>;   ///< throughput
using BytesPerSecond = Quantity<Dim<-1, 0, 0, 1>>;   ///< bandwidth
using FlopsPerJoule = Quantity<Dim<0, -1, 1, 0>>;    ///< energy efficiency

// --- Dimension proofs of the algebra's load-bearing identities --------------
//
// Each paper equation gets a `static_assert` "dimension proof" next to
// its implementation (model.hpp, machine.hpp, powerline.hpp).  The
// generic identities the proofs build on are pinned here, so a future
// edit to the exponent arithmetic cannot silently change them.

static_assert(std::is_same_v<decltype(Watts{} * Seconds{}), Joules>,
              "W x s = J");
static_assert(std::is_same_v<decltype(Joules{} / Seconds{}), Watts>,
              "J / s = W");
static_assert(std::is_same_v<decltype(FlopCount{} / ByteCount{}), Intensity>,
              "flop / byte = intensity  (I = W/Q, SS II-A)");
static_assert(std::is_same_v<decltype(FlopCount{} * TimePerFlop{}), Seconds>,
              "W x tau_flop = s");
static_assert(std::is_same_v<decltype(FlopCount{} * EnergyPerFlop{}), Joules>,
              "W x eps_flop = J");
static_assert(std::is_same_v<decltype(ByteCount{} * EnergyPerByte{}), Joules>,
              "Q x eps_mem = J");
static_assert(std::is_same_v<decltype(1.0 / TimePerFlop{}), FlopsPerSecond>,
              "1 / tau_flop = peak throughput");
static_assert(std::is_same_v<decltype(1.0 / EnergyPerFlop{}), FlopsPerJoule>,
              "1 / eps_flop = flops per Joule");
static_assert(std::is_same_v<decltype(Seconds{} / Seconds{}), double>,
              "same-dimension ratios are plain numbers");

// --- SI prefixes, as multipliers --------------------------------------------

inline constexpr double kPico = 1e-12;
inline constexpr double kNano = 1e-9;
inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

/// Convenience constructors used throughout presets and tests.
constexpr Joules picojoules(double v) noexcept { return Joules{v * kPico}; }
constexpr Joules nanojoules(double v) noexcept { return Joules{v * kNano}; }
constexpr Joules microjoules(double v) noexcept { return Joules{v * kMicro}; }
constexpr Seconds picoseconds(double v) noexcept { return Seconds{v * kPico}; }
constexpr Seconds nanoseconds(double v) noexcept { return Seconds{v * kNano}; }
constexpr Seconds milliseconds(double v) noexcept { return Seconds{v * kMilli}; }
constexpr Watts watts(double v) noexcept { return Watts{v}; }
constexpr FlopCount gigaflops(double v) noexcept { return FlopCount{v * kGiga}; }
constexpr ByteCount gigabytes(double v) noexcept { return ByteCount{v * kGiga}; }
constexpr EnergyPerFlop picojoules_per_flop(double v) noexcept {
  return EnergyPerFlop{v * kPico};
}
constexpr EnergyPerByte picojoules_per_byte(double v) noexcept {
  return EnergyPerByte{v * kPico};
}

/// Throughput helpers: "X Gflop/s" -> seconds per flop, and inverse.
constexpr TimePerFlop seconds_per_flop_from_gflops(double gflops) noexcept {
  return TimePerFlop{1.0 / (gflops * kGiga)};
}
constexpr TimePerByte seconds_per_byte_from_gbs(double gb_per_s) noexcept {
  return TimePerByte{1.0 / (gb_per_s * kGiga)};
}

/// Approximate-equality helper used pervasively by tests and fitting code.
[[nodiscard]] inline bool approx_equal(double a, double b,
                                       double rel_tol = 1e-9,
                                       double abs_tol = 0.0) noexcept {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return diff <= rel_tol * scale;
}

/// Typed overload: quantities only compare approximately to quantities
/// of the same dimension.
template <class D>
[[nodiscard]] bool approx_equal(Quantity<D> a, Quantity<D> b,
                                double rel_tol = 1e-9,
                                double abs_tol = 0.0) noexcept {
  return approx_equal(a.value(), b.value(), rel_tol, abs_tol);
}

}  // namespace rme
