#pragma once
// Strong arithmetic quantity types for the energy-roofline model.
//
// The model (Choi, Bedard, Fowler, Vuduc — "A Roofline Model of Energy",
// IPDPS 2013) mixes quantities with easily-confused dimensions: time per
// flop, energy per byte, flops per Joule, Joules per second.  These thin
// wrappers catch unit mix-ups at compile time at API boundaries while
// staying trivially convertible to `double` for numeric kernels.

#include <cmath>
#include <compare>
#include <cstdint>

namespace rme {

/// A dimension-tagged floating-point quantity.
///
/// `Quantity` supports the closed operations (+, -, scaling by a plain
/// number, ratio of same dimension) that are always dimensionally valid.
/// Cross-dimension products/quotients (e.g. Joules / Seconds = Watts) are
/// declared explicitly below, next to the types they relate.
template <class Tag>
class Quantity {
 public:
  constexpr Quantity() noexcept = default;
  constexpr explicit Quantity(double v) noexcept : value_(v) {}

  [[nodiscard]] constexpr double value() const noexcept { return value_; }

  constexpr auto operator<=>(const Quantity&) const noexcept = default;

  constexpr Quantity& operator+=(Quantity o) noexcept {
    value_ += o.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) noexcept {
    value_ -= o.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) noexcept {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) noexcept {
    value_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) noexcept {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) noexcept {
    return Quantity{a.value_ - b.value_};
  }
  friend constexpr Quantity operator-(Quantity a) noexcept {
    return Quantity{-a.value_};
  }
  friend constexpr Quantity operator*(Quantity a, double s) noexcept {
    return Quantity{a.value_ * s};
  }
  friend constexpr Quantity operator*(double s, Quantity a) noexcept {
    return Quantity{s * a.value_};
  }
  friend constexpr Quantity operator/(Quantity a, double s) noexcept {
    return Quantity{a.value_ / s};
  }
  /// Ratio of two same-dimension quantities is a plain number.
  friend constexpr double operator/(Quantity a, Quantity b) noexcept {
    return a.value_ / b.value_;
  }

 private:
  double value_ = 0.0;
};

namespace tags {
struct Time {};
struct Energy {};
struct Power {};
struct Work {};       // arithmetic operations (flops)
struct Traffic {};    // memory traffic (bytes)
struct Intensity {};  // flops per byte
}  // namespace tags

using Seconds = Quantity<tags::Time>;
using Joules = Quantity<tags::Energy>;
using Watts = Quantity<tags::Power>;
using FlopCount = Quantity<tags::Work>;
using ByteCount = Quantity<tags::Traffic>;
using Intensity = Quantity<tags::Intensity>;

// --- Cross-dimension relations ---------------------------------------------

/// Energy dissipated over a duration at constant power.
constexpr Joules operator*(Watts p, Seconds t) noexcept {
  return Joules{p.value() * t.value()};
}
constexpr Joules operator*(Seconds t, Watts p) noexcept { return p * t; }

/// Average power of an energy spent over a duration.
constexpr Watts operator/(Joules e, Seconds t) noexcept {
  return Watts{e.value() / t.value()};
}

/// Operational intensity I = W / Q  (flops per byte), §II-A.
constexpr Intensity operator/(FlopCount w, ByteCount q) noexcept {
  return Intensity{w.value() / q.value()};
}

// --- SI prefixes, as multipliers --------------------------------------------

inline constexpr double kPico = 1e-12;
inline constexpr double kNano = 1e-9;
inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

/// Convenience constructors used throughout presets and tests.
constexpr Joules picojoules(double v) noexcept { return Joules{v * kPico}; }
constexpr Joules nanojoules(double v) noexcept { return Joules{v * kNano}; }
constexpr Joules microjoules(double v) noexcept { return Joules{v * kMicro}; }
constexpr Seconds picoseconds(double v) noexcept { return Seconds{v * kPico}; }
constexpr Seconds nanoseconds(double v) noexcept { return Seconds{v * kNano}; }
constexpr Seconds milliseconds(double v) noexcept { return Seconds{v * kMilli}; }
constexpr Watts watts(double v) noexcept { return Watts{v}; }
constexpr FlopCount gigaflops(double v) noexcept { return FlopCount{v * kGiga}; }
constexpr ByteCount gigabytes(double v) noexcept { return ByteCount{v * kGiga}; }

/// Throughput helpers: "X Gflop/s" -> seconds per flop, and inverse.
constexpr double seconds_per_flop_from_gflops(double gflops) noexcept {
  return 1.0 / (gflops * kGiga);
}
constexpr double seconds_per_byte_from_gbs(double gb_per_s) noexcept {
  return 1.0 / (gb_per_s * kGiga);
}

/// Approximate-equality helper used pervasively by tests and fitting code.
[[nodiscard]] inline bool approx_equal(double a, double b,
                                       double rel_tol = 1e-9,
                                       double abs_tol = 0.0) noexcept {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return diff <= rel_tol * scale;
}

}  // namespace rme
