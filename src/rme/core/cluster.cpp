#include "rme/core/cluster.hpp"

#include <algorithm>
#include <cmath>

namespace rme {

const char* to_string(Channel c) noexcept {
  switch (c) {
    case Channel::kCompute:
      return "compute-bound";
    case Channel::kMemory:
      return "memory-bound";
    case Channel::kNetwork:
      return "network-bound";
  }
  return "?";
}

DistributedTime predict_time(const ClusterParams& c,
                             const DistributedProfile& w) noexcept {
  DistributedTime t;
  t.flops_seconds = FlopCount{w.flops} * c.node.time_per_flop;
  t.mem_seconds = ByteCount{w.mem_bytes} * c.node.time_per_byte;
  t.net_seconds = ByteCount{w.net_bytes} * c.time_per_net_byte;
  t.total_seconds = max(max(t.flops_seconds, t.mem_seconds), t.net_seconds);
  if (t.total_seconds == t.net_seconds && t.net_seconds > Seconds{0.0}) {
    t.bound = Channel::kNetwork;
  } else if (t.total_seconds == t.mem_seconds &&
             t.mem_seconds > t.flops_seconds) {
    t.bound = Channel::kMemory;
  } else {
    t.bound = Channel::kCompute;
  }
  return t;
}

DistributedEnergy predict_energy(const ClusterParams& c,
                                 const DistributedProfile& w) noexcept {
  DistributedEnergy e;
  const DistributedTime t = predict_time(c, w);
  e.flops_joules = FlopCount{c.nodes * w.flops} * c.node.energy_per_flop;
  e.mem_joules = ByteCount{c.nodes * w.mem_bytes} * c.node.energy_per_byte;
  e.net_joules = ByteCount{c.nodes * w.net_bytes} * c.energy_per_net_byte;
  e.const_joules = c.nodes * (c.node.const_power * t.total_seconds);
  e.total_joules =
      e.flops_joules + e.mem_joules + e.net_joules + e.const_joules;
  return e;
}

double halo_net_bytes(double n_local, double word) noexcept {
  return 6.0 * std::cbrt(n_local) * std::cbrt(n_local) * word;
}

double allreduce_net_bytes(double vector_len, double word) noexcept {
  return 2.0 * vector_len * word;
}

double fft_transpose_net_bytes(double n, double p, double word) noexcept {
  return (n / p) * word;
}

double network_bound_onset(const ClusterParams& cluster, double flops,
                           double mem_bytes,
                           double (*net_bytes_of_p)(double, double),
                           double n_local, double p_max) {
  for (double p = 2.0; p <= p_max; p *= 2.0) {
    DistributedProfile w;
    w.flops = flops;
    w.mem_bytes = mem_bytes;
    w.net_bytes = net_bytes_of_p(n_local, p);
    if (predict_time(cluster, w).bound == Channel::kNetwork) return p;
  }
  return -1.0;
}

}  // namespace rme
