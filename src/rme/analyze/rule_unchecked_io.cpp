// unchecked-io: a library file stream that is written and never has its
// state checked afterwards.  std::ofstream swallows write failures
// silently (disk full, quota, dead NFS mount): every << succeeds at the
// call site and the data simply never lands.  For a measurement library
// whose outputs feed fits and goldens, a silent partial write is a
// silently wrong result — the failure mode the session-artifact layer
// exists to prevent (docs/REPLAY.md).
//
// The rule tracks each `std::ofstream` variable declared in a file
// under src/rme/ and requires a stream-state check (`!f`, `f.good()`,
// `f.fail()`, `f.bad()`, `f.is_open()`, `if (f)`, or a bool cast) on or
// after the line of its *last* write-ish use (`f << ...`, `f.write(...)`,
// `f.flush()`, or `f` passed to a writer function).  A check that only
// guards the open — the classic `if (!f) throw` right after the
// constructor — does not count: it proves the file opened, not that the
// bytes arrived.  Discarded `fwrite` return values are flagged the same
// way.  Scoped to the library proper; tools, benches, and tests own
// their error handling.

#include <regex>
#include <string>
#include <vector>

#include "rme/analyze/rule.hpp"

namespace rme::analyze {
namespace {

struct StreamVar {
  std::string name;
  std::size_t declared_line = 0;
  int declared_depth = 0;  ///< Brace depth at declaration.
  std::size_t last_write_line = 0;
  std::size_t last_write_col = 0;
  std::size_t last_check_line = 0;
};

class UncheckedIoRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "unchecked-io";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "file stream written without a state check after the last "
           "write; stream errors are silently lost";
  }
  [[nodiscard]] std::string_view explain() const noexcept override {
    return "Stream writes do not throw by default: a full disk, a "
           "vanished directory, or a failed flush just sets failbit and "
           "every later operation becomes a silent no-op.  For this "
           "project the payload is session artifacts and benchmark CSVs "
           "— files whose whole value is being trustworthy on replay — "
           "so a truncated artifact that nobody noticed is strictly worse "
           "than a crash.  Safe replacement: after the last write (or "
           "before destruction) check the stream and surface the failure "
           "— `if (!out) return Error{...}` in library code, or flush "
           "explicitly and check; the artifact writer's commit path "
           "shows the idiom.  Checks on any path after the final write "
           "satisfy the rule.";
  }

  void check(const SourceFile& file,
             std::vector<Finding>& out) const override {
    if (!file.in_library()) return;

    static const std::regex kDecl(
        R"((?:^|[^A-Za-z0-9_:])(?:std\s*::\s*)?ofstream\s+)"
        R"(([A-Za-z_][A-Za-z0-9_]*)\s*[;({])");
    static const std::regex kDiscardedFwrite(
        R"(^\s*(?:std\s*::\s*)?fwrite\s*\()");

    std::vector<StreamVar> vars;
    int depth = 0;
    const auto finalize = [&](const StreamVar& v) {
      if (v.last_write_line == 0) return;  // Declared but never written.
      if (v.last_check_line >= v.last_write_line) return;
      out.push_back(Finding{
          std::string(name()), file.path(), v.last_write_line,
          v.last_write_col,
          "std::ofstream '" + v.name +
              "' is never checked after its last write (a check before "
              "the writes only proves the open succeeded); verify " +
              v.name + ".good() or !" + v.name +
              " before relying on the output"});
    };

    for (std::size_t line = 1; line <= file.line_count(); ++line) {
      const std::string& code = file.code_line(line);

      for (auto it = std::sregex_iterator(code.begin(), code.end(), kDecl);
           it != std::sregex_iterator(); ++it) {
        vars.push_back(StreamVar{(*it)[1].str(), line, depth, 0, 0, 0});
      }

      for (StreamVar& v : vars) {
        if (write_use_col(code, v.name) != 0) {
          v.last_write_line = line;
          v.last_write_col = write_use_col(code, v.name);
        }
        if (has_state_check(code, v.name)) v.last_check_line = line;
      }

      std::smatch m;
      if (std::regex_search(code, m, kDiscardedFwrite)) {
        out.push_back(Finding{
            std::string(name()), file.path(), line,
            static_cast<std::size_t>(m.position(0)) + m.length(0),
            "fwrite return value discarded; a short write goes unnoticed "
            "— compare it against the element count"});
      }

      // Close lexical scopes: a stream that went out of scope can no
      // longer be checked, so judge it now.  This also keeps same-named
      // locals in different functions from shadowing each other.
      for (const char c : code) {
        if (c == '{') {
          depth += 1;
        } else if (c == '}') {
          depth -= 1;
          for (std::size_t i = vars.size(); i-- > 0;) {
            if (vars[i].declared_depth > depth) {
              finalize(vars[i]);
              vars.erase(vars.begin() + static_cast<std::ptrdiff_t>(i));
            }
          }
        }
      }
    }
    for (const StreamVar& v : vars) finalize(v);
  }

 private:
  /// Column (1-based) of a write-ish use of `var` on this line; 0 when
  /// none: `var << ...`, `var.write/put/flush(...)`, or `var` passed as
  /// a plain function argument (a writer taking the stream by
  /// reference).
  static std::size_t write_use_col(const std::string& code,
                                   const std::string& var) {
    const std::regex direct(
        R"((^|[^A-Za-z0-9_]))" + var +
        R"(\s*(<<|\.\s*(write|put|flush)\s*\())");
    std::smatch m;
    if (std::regex_search(code, m, direct)) {
      return static_cast<std::size_t>(m.position(1)) + m.length(1) + 1;
    }
    const std::regex as_arg(R"([(,]\s*)" + var + R"(\s*[,)])");
    if (std::regex_search(code, m, as_arg)) {
      return static_cast<std::size_t>(m.position(0)) + 2;
    }
    return 0;
  }

  static bool has_state_check(const std::string& code,
                              const std::string& var) {
    const std::regex check(
        R"((!\s*)" + var + R"(\b))"
        R"(|(\b)" + var + R"(\s*\.\s*(good|fail|bad|is_open)\s*\())"
        R"(|(\bif\s*\(\s*)" + var + R"(\s*\)))"
        R"(|(static_cast\s*<\s*bool\s*>\s*\(\s*)" + var + R"(\s*\)))");
    return std::regex_search(code, check);
  }
};

}  // namespace
}  // namespace rme::analyze

namespace rme::analyze {

std::unique_ptr<Rule> make_unchecked_io_rule() {
  return std::make_unique<UncheckedIoRule>();
}

}  // namespace rme::analyze
