// blocking-in-hot-path (cross-TU): operations that can park the
// calling thread — file and console I/O, process spawns, sleeps — on
// paths the call graph reaches from a hot root.  A blocked worker
// idles at static power (the paper's π₀ term) while producing zero
// flops, the single worst point on the energy roofline; and a syscall
// in a measured region swamps the counters joule benchmarking reads.
//
// Fired ops (kind "blocking"): std::ifstream/ofstream/fstream
// construction, std::cin/cout/cerr/clog use, C stdio (fopen, fread,
// fwrite, fgets, fscanf, fprintf, fflush), getline, system, popen,
// and the sleep family (sleep, usleep, nanosleep, sleep_for,
// sleep_until).

#include <memory>
#include <string>
#include <vector>

#include "rme/analyze/callgraph.hpp"
#include "rme/analyze/rules.hpp"

namespace rme::analyze {
namespace {

class BlockingInHotPathRule final : public ProjectRule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "blocking-in-hot-path";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "file/console I/O, process spawn, or sleep reachable from a "
           "hot root; stage the I/O outside the hot region";
  }
  [[nodiscard]] std::string_view explain() const noexcept override {
    return "A blocking call on the hot path parks the worker at static "
           "power — the paper's pi0 term keeps burning joules while the "
           "thread produces zero flops, which is the single worst "
           "operating point on the energy roofline — and a syscall inside "
           "a measured region swamps the counters RAPL-style joule "
           "benchmarking would read.  This rule flags stream "
           "construction (std::ifstream/ofstream/fstream), console "
           "streams (std::cin/cout/cerr/clog), C stdio calls, getline, "
           "system/popen, and sleeps inside any definition the call "
           "graph reaches from a hot root.  Safe replacements: read "
           "inputs and open outputs before the hot region, buffer "
           "results and flush after the join, record events through "
           "rme::obs (designed to be a pure observer), or mark a true "
           "cold boundary — error reporting, startup ingest — with "
           "`// rme-cold: <reason>`.";
  }

  void check(const ProjectIndex& index,
             std::vector<Finding>& out) const override {
    for (const HotFunction& hf : compute_hot_set(index)) {
      const std::string rel = repo_relative(hf.file->path);
      for (const HotOp& op : hf.def->ops) {
        if (op.kind != "blocking" || op.suppressed) continue;
        out.push_back(Finding{
            std::string(name()), rel, op.line, op.column,
            "blocking operation (" + op.detail + ") on the hot path via " +
                hf.trace + "; stage the I/O outside the hot region or "
                "record through rme::obs"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<ProjectRule> make_blocking_in_hot_path_rule() {
  return std::make_unique<BlockingInHotPathRule>();
}

}  // namespace rme::analyze
