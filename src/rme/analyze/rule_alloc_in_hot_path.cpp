// alloc-in-hot-path (cross-TU): heap traffic on the paths the roofline
// model prices per iteration.  The paper's balance analysis assumes
// the hot loop's per-item cost is the kernel's flops and bytes; a
// malloc per item adds an unpriced, allocator-lock-contended term that
// both slows the loop and pollutes it as a measurement surface.
//
// Fired ops (functions.cpp tags them kind "alloc" / "growth"):
//   * operator new, std::make_unique, std::make_shared;
//   * std::string construction (each carries a potential allocation;
//     `static` locals are exempt — they run once);
//   * push_back / emplace_back / append with no earlier `reserve` on
//     the same receiver — but only inside a lexical loop or a hot
//     lambda body (a parallel_map callable *is* the loop body), so an
//     amortized single append outside any loop stays quiet.
//
// A definition is on the hot path when the call-graph walk
// (callgraph.hpp) reaches it from a `// rme-hot:` root or an implicit
// exec::parallel_* callable.  Fixes, in preference order: hoist the
// allocation out of the per-item path, reserve the destination once,
// reuse a caller-owned buffer, or mark a genuine cold boundary with
// `// rme-cold: <reason>`.

#include <memory>
#include <string>
#include <vector>

#include "rme/analyze/callgraph.hpp"
#include "rme/analyze/rules.hpp"

namespace rme::analyze {
namespace {

class AllocInHotPathRule final : public ProjectRule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "alloc-in-hot-path";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "heap allocation or unreserved container growth reachable "
           "from a hot root; hoist, reserve, or reuse a buffer";
  }
  [[nodiscard]] std::string_view explain() const noexcept override {
    return "The energy roofline prices a hot loop by what each iteration "
           "does per flop and per byte; a heap allocation per item adds an "
           "unpriced cost — allocator lock contention, cache pollution, and "
           "latency jitter — that both slows the loop and corrupts it as a "
           "measurement surface for joule benchmarking.  This rule walks "
           "the project call graph from every `// rme-hot: <reason>` root "
           "(and every lambda handed to exec::parallel_for/parallel_map) "
           "and flags operator new, std::make_unique/make_shared, "
           "std::string construction, and push_back/emplace_back/append "
           "without a visible reserve on the receiver.  Safe replacements: "
           "hoist the allocation before the loop, reserve the final size "
           "once, reuse a caller-owned scratch buffer, or — when the path "
           "is genuinely cold, like error reporting — cut it out of the "
           "graph with `// rme-cold: <reason>` or a scoped "
           "`rme-lint: allow(alloc-in-hot-path: <reason>)`.";
  }

  void check(const ProjectIndex& index,
             std::vector<Finding>& out) const override {
    for (const HotFunction& hf : compute_hot_set(index)) {
      const std::string rel = repo_relative(hf.file->path);
      for (const HotOp& op : hf.def->ops) {
        if (op.suppressed) continue;
        if (op.kind == "alloc") {
          out.push_back(Finding{
              std::string(name()), rel, op.line, op.column,
              "heap allocation (" + op.detail + ") on the hot path " +
                  (op.in_loop ? "inside a loop " : "") + "via " + hf.trace +
                  "; hoist it out of the per-item path or reuse a "
                  "caller-owned buffer"});
        } else if (op.kind == "growth" &&
                   (op.in_loop || hf.def->is_lambda)) {
          out.push_back(Finding{
              std::string(name()), rel, op.line, op.column,
              "container growth (" + op.detail + ") with no earlier "
                  "reserve on the receiver, on the hot path via " +
                  hf.trace + "; reserve the final size before the loop"});
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<ProjectRule> make_alloc_in_hot_path_rule() {
  return std::make_unique<AllocInHotPathRule>();
}

}  // namespace rme::analyze
