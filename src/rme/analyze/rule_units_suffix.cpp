// units-suffix: a raw `double` whose name carries a unit suffix
// (_seconds, _joules, _watts, ...) promises a dimension the type system
// cannot check.  Port of the original tools/rme_lint rule onto the
// masked source model: string literals and block comments no longer
// defeat it, and translation units are scanned alongside headers (the
// old tool covered headers only).

#include <regex>
#include <string>

#include "rme/analyze/rule.hpp"

namespace rme::analyze {
namespace {

class UnitsSuffixRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "units-suffix";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "raw double with a unit-suffixed name; use the typed Quantity "
           "from rme/core/units.hpp";
  }

  void check(const SourceFile& file,
             std::vector<Finding>& out) const override {
    static const std::regex kPattern(
        R"(\bdouble\s+([A-Za-z_][A-Za-z0-9_]*)"
        R"((?:_seconds|_joules|_watts|_volts|_amps|_hz|_per_flop|_per_byte)_?)\b)");
    // Group 1 is the full identifier: the leading [A-Za-z0-9_]* backtracks
    // until the alternation can claim the unit suffix.
    for (std::size_t line = 1; line <= file.line_count(); ++line) {
      const std::string& code = file.code_line(line);
      const auto begin = std::sregex_iterator(code.begin(), code.end(),
                                              kPattern);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        out.push_back(Finding{
            std::string(name()), file.path(), line,
            static_cast<std::size_t>(it->position(0)) + 1,
            "raw double '" + (*it)[1].str() +
                "' has a unit-suffixed name; use the typed quantity from "
                "rme/core/units.hpp (Seconds, Joules, Watts, ...) and keep "
                ".value() escape hatches inside numeric kernels"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_units_suffix_rule() {
  return std::make_unique<UnitsSuffixRule>();
}

}  // namespace rme::analyze
