// units-suffix: a raw `double` whose name carries a unit suffix
// (_seconds, _joules, _watts, ...) promises a dimension the type system
// cannot check.  Ported onto the shared token stream (tokens.hpp): the
// pattern is an adjacent `double` + identifier token pair on one line,
// so string literals, comments, and pointer/reference declarators are
// structurally invisible instead of regex-escaped.

#include <array>
#include <string>
#include <string_view>

#include "rme/analyze/rule.hpp"

namespace rme::analyze {
namespace {

constexpr std::array<std::string_view, 8> kUnitSuffixes{
    "_seconds", "_joules", "_watts",    "_volts",
    "_amps",    "_hz",     "_per_flop", "_per_byte"};

bool has_unit_suffix(const std::string& ident) {
  for (const std::string_view suffix : kUnitSuffixes) {
    // The suffix may be followed by a single trailing underscore (the
    // member-variable convention): idle_watts and idle_watts_ both flag.
    std::string_view tail(ident);
    if (!tail.empty() && tail.back() == '_' &&
        tail.size() > suffix.size()) {
      tail.remove_suffix(1);
    }
    if (tail.size() > suffix.size() &&
        tail.substr(tail.size() - suffix.size()) == suffix) {
      return true;
    }
  }
  return false;
}

class UnitsSuffixRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "units-suffix";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "raw double with a unit-suffixed name; use the typed Quantity "
           "from rme/core/units.hpp";
  }
  [[nodiscard]] std::string_view explain() const noexcept override {
    return "A `double energy_pj` keeps its unit in the variable name, "
           "where the type system cannot see it: nothing stops the value "
           "from being added to seconds or passed where joules were "
           "meant, and the roofline algebra silently produces garbage "
           "with plausible magnitudes.  The typed quantities in "
           "rme/core/units.hpp carry the dimension in the type, so those "
           "mistakes fail to compile and conversions are explicit, named "
           "operations.  Safe replacement: declare the value as the "
           "matching Quantity (Picojoules, Seconds, Watts, ...) and "
           "unwrap with .value() only inside a .cpp numeric kernel at "
           "the arithmetic boundary, never in an interface.";
  }

  void check(const SourceFile& file,
             std::vector<Finding>& out) const override {
    const std::vector<Token>& toks = file.tokens().tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent || t.text != "double") continue;
      const Token& next = toks[i + 1];
      if (next.kind != TokKind::kIdent || next.line != t.line) continue;
      if (!has_unit_suffix(next.text)) continue;
      out.push_back(Finding{
          std::string(name()), file.path(), t.line, t.column,
          "raw double '" + next.text +
              "' has a unit-suffixed name; use the typed quantity from "
              "rme/core/units.hpp (Seconds, Joules, Watts, ...) and keep "
              ".value() escape hatches inside numeric kernels"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_units_suffix_rule() {
  return std::make_unique<UnitsSuffixRule>();
}

}  // namespace rme::analyze
