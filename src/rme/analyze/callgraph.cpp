#include "rme/analyze/callgraph.hpp"

#include <deque>
#include <map>
#include <string_view>

namespace rme::analyze {
namespace {

/// Last `::` component of a qualified name (Engine::handle → handle).
std::string_view last_component(std::string_view name) {
  const std::size_t pos = name.rfind("::");
  return pos == std::string_view::npos ? name : name.substr(pos + 2);
}

/// True for files that never join the hot graph: hot-path discipline
/// is a src/tools/bench contract, not a tests/examples one.
bool excluded(const std::string& path) {
  const std::string rel = repo_relative(path);
  return rel.rfind("tests/", 0) == 0 || rel.rfind("examples/", 0) == 0;
}

struct Node {
  const FileFacts* file = nullptr;
  const FunctionDef* def = nullptr;
};

/// Header a TU's out-of-line definitions are declared in: same path,
/// .hpp extension.  "src/rme/fit/robust.cpp" → "src/rme/fit/robust.hpp".
std::string paired_header(const std::string& rel) {
  const std::size_t dot = rel.rfind('.');
  if (dot == std::string::npos) return rel;
  return rel.substr(0, dot) + ".hpp";
}

/// Include visibility between indexed files, by repo-relative path.
/// visible(caller, target) is true when the caller's file transitively
/// includes the target definition's file — or, for a definition in a
/// .cpp, that TU's paired header.  Name-matched call edges are only
/// admitted between visible files, which is what keeps a `.load()` on
/// an atomic in one subsystem from aliasing a `Baseline::load` it
/// could never actually call.
class Visibility {
 public:
  explicit Visibility(const ProjectIndex& index) {
    std::map<std::string, std::size_t> by_rel;
    rels_.reserve(index.files.size());
    for (const FileFacts& facts : index.files) {
      by_rel.emplace(repo_relative(facts.path), rels_.size());
      rels_.push_back(repo_relative(facts.path));
    }
    // Direct include edges.  Include targets are written relative to
    // the src/ include root ("rme/fit/robust.hpp"); files are indexed
    // repo-relative ("src/rme/fit/robust.hpp").
    std::vector<std::vector<std::size_t>> direct(rels_.size());
    std::size_t from = 0;
    for (const FileFacts& facts : index.files) {
      for (const IncludeSite& inc : facts.includes) {
        auto it = by_rel.find("src/" + inc.target);
        if (it == by_rel.end()) it = by_rel.find(inc.target);
        if (it != by_rel.end()) direct[from].push_back(it->second);
      }
      ++from;
    }
    // Transitive closure by BFS from each file (the project include
    // graph is small; this stays well under a millisecond).
    closure_.assign(rels_.size(), {});
    for (std::size_t start = 0; start < rels_.size(); ++start) {
      std::vector<bool>& reach = closure_[start];
      reach.assign(rels_.size(), false);
      std::deque<std::size_t> queue{start};
      reach[start] = true;
      while (!queue.empty()) {
        const std::size_t at = queue.front();
        queue.pop_front();
        for (const std::size_t next : direct[at]) {
          if (reach[next]) continue;
          reach[next] = true;
          queue.push_back(next);
        }
      }
    }
    for (std::size_t i = 0; i < rels_.size(); ++i) {
      header_of_.push_back(by_rel.count(paired_header(rels_[i])) != 0
                               ? by_rel.at(paired_header(rels_[i]))
                               : i);
    }
  }

  /// Both arguments are indices into the (path-sorted) file list.
  [[nodiscard]] bool visible(std::size_t caller, std::size_t target) const {
    return closure_[caller][target] || closure_[caller][header_of_[target]];
  }

 private:
  std::vector<std::string> rels_;
  std::vector<std::vector<bool>> closure_;
  std::vector<std::size_t> header_of_;  ///< TU → paired header (or self).
};

}  // namespace

std::vector<HotFunction> compute_hot_set(const ProjectIndex& index) {
  const Visibility vis(index);

  // Flatten the index into nodes; the index is path-sorted and
  // per-file definition order is token order, so node ids are stable.
  std::vector<Node> nodes;
  std::vector<std::size_t> node_file;  ///< Node id → file index.
  // callee name → node ids, for call-site matching.  std::map keeps
  // the grouping itself deterministic (not that it matters: targets
  // are pushed in node order).
  std::map<std::string_view, std::vector<std::size_t>> by_name;
  // Per file, definition index → node id, for parent links.
  std::vector<std::size_t> def_base;
  std::size_t file_index = 0;
  for (const FileFacts& facts : index.files) {
    def_base.push_back(nodes.size());
    if (excluded(facts.path)) {
      ++file_index;
      continue;
    }
    for (const FunctionDef& def : facts.functions) {
      const std::size_t id = nodes.size();
      nodes.push_back(Node{&facts, &def});
      node_file.push_back(file_index);
      if (!def.is_lambda) {
        by_name[last_component(def.name)].push_back(id);
      }
    }
    ++file_index;
  }

  // Lambda children per node: a lambda is hot whenever its lexically
  // enclosing definition is (the enclosing body runs it, directly or
  // by handing it to an algorithm).
  std::vector<std::vector<std::size_t>> lambda_children(nodes.size());
  {
    std::size_t file_idx = 0;
    std::size_t node_id = 0;
    for (const FileFacts& facts : index.files) {
      if (excluded(facts.path)) {
        ++file_idx;
        continue;
      }
      const std::size_t base = def_base[file_idx];
      for (const FunctionDef& def : facts.functions) {
        if (def.is_lambda && def.parent >= 0) {
          lambda_children[base + static_cast<std::size_t>(def.parent)]
              .push_back(node_id);
        }
        ++node_id;
      }
      ++file_idx;
    }
  }

  // BFS from the roots, first trace wins.  The queue is seeded in node
  // order and edges are expanded in definition order, so traces and
  // the visit order are independent of how the index was built.
  std::vector<std::string> trace(nodes.size());
  std::vector<bool> hot(nodes.size(), false);
  std::deque<std::size_t> queue;
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    const FunctionDef& def = *nodes[id].def;
    if (def.hot_root && !def.cold) {
      hot[id] = true;
      // A bare "<lambda:57>" names nothing the reader can find; anchor
      // root lambdas to their file.
      trace[id] = def.is_lambda
                      ? repo_relative(nodes[id].file->path) + ":" + def.name
                      : def.name;
      queue.push_back(id);
    }
  }
  while (!queue.empty()) {
    const std::size_t id = queue.front();
    queue.pop_front();
    const auto mark = [&](std::size_t target) {
      const FunctionDef& def = *nodes[target].def;
      if (hot[target] || def.cold) return;
      hot[target] = true;
      trace[target] = trace[id] + " -> " + def.name;
      queue.push_back(target);
    };
    for (const std::size_t child : lambda_children[id]) mark(child);
    for (const CallSite& call : nodes[id].def->calls) {
      const auto it = by_name.find(std::string_view(call.callee));
      if (it == by_name.end()) continue;
      for (const std::size_t target : it->second) {
        // A name-matched edge only counts when the caller's file can
        // actually see the target's declaration.
        if (!vis.visible(node_file[id], node_file[target])) continue;
        mark(target);
      }
    }
  }

  std::vector<HotFunction> out;
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    if (!hot[id]) continue;
    out.push_back(HotFunction{nodes[id].file, nodes[id].def,
                              std::move(trace[id])});
  }
  return out;
}

}  // namespace rme::analyze
