// wire-error-exhaustiveness (cross-TU): every error code the serve
// protocol can emit must be pinned by a conformance fixture.  The
// corpus under tests/serve/ (NN_name.req → NN_name.resp, byte-for-
// byte) is the protocol's compatibility contract; an ErrorCode
// enumerator with no fixture is a wire shape clients can receive but
// nothing defends, so it can drift silently.
//
// The fact extractor records the ErrorCode enumerators when it scans
// src/rme/serve/protocol.hpp (matched by repo-relative path, so
// fixture trees can model the layout).  At check time this rule maps
// each enumerator to its wire name — strip the `k`, snake_case the
// rest: kParseError → parse_error, exactly the to_string convention —
// and requires `"code":"<wire>"` to appear in at least one
// tests/serve/*.resp under the same tree.  One finding per missing
// code, anchored at the enumerator; a missing corpus directory is a
// single finding at the enum.
//
// This rule reads the fixture corpus from disk at check time (project
// rules never enter the incremental cache, so there is no staleness
// hazard), iterating the directory in sorted order for determinism.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "rme/analyze/rules.hpp"

namespace rme::analyze {
namespace {

/// kParseError → parse_error (the serve to_string convention).
std::string wire_name(const std::string& enumerator) {
  std::string out;
  std::size_t start = 0;
  if (enumerator.size() > 1 && enumerator[0] == 'k' &&
      std::isupper(static_cast<unsigned char>(enumerator[1])) != 0) {
    start = 1;
  }
  for (std::size_t i = start; i < enumerator.size(); ++i) {
    const char c = enumerator[i];
    if (std::isupper(static_cast<unsigned char>(c)) != 0) {
      if (!out.empty()) out += '_';
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      out += c;
    }
  }
  return out;
}

/// Concatenated contents of every *.resp in `dir`, in sorted order;
/// false when the directory does not exist.
bool read_corpus(const std::filesystem::path& dir, std::string& out) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return false;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".resp") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    std::ifstream in(file);
    std::ostringstream buf;
    buf << in.rdbuf();
    out += buf.str();
    out += '\n';
  }
  return true;
}

class WireErrorsRule final : public ProjectRule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "wire-error-exhaustiveness";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "every serve ErrorCode must be pinned by a tests/serve "
           "conformance fixture; unpinned wire shapes drift silently";
  }
  [[nodiscard]] std::string_view explain() const noexcept override {
    return "The serve conformance corpus (tests/serve/NN_name.req pinned "
           "byte-for-byte to NN_name.resp) is the wire protocol's "
           "compatibility contract: a response shape a fixture pins "
           "cannot change without a reviewed golden update.  An ErrorCode "
           "enumerator with no fixture is the opposite — a shape clients "
           "can receive that nothing defends, free to drift with any "
           "refactor of the error path.  This rule reads the enumerators "
           "from src/rme/serve/protocol.hpp, maps each to its wire name "
           "(kParseError → parse_error, the to_string convention), and "
           "requires \"code\":\"<wire>\" to appear in at least one .resp "
           "file.  To fix a finding: add a NN_name.req that provokes the "
           "code deterministically (rme_served's --chaos-full-at and "
           "--queue-limit exist to make even overload reproducible), "
           "capture the exact response as NN_name.resp, and register the "
           "pair in test_serve's corpus list.";
  }

  void check(const ProjectIndex& index,
             std::vector<Finding>& out) const override {
    constexpr std::string_view kProtocol = "src/rme/serve/protocol.hpp";
    for (const FileFacts& facts : index.files) {
      if (facts.wire_codes.empty()) continue;
      if (repo_relative(facts.path) != kProtocol) continue;
      // The corpus lives under the same tree root the protocol header
      // was scanned from: strip the repo-relative suffix, append
      // tests/serve.  Works for absolute and relative invocations.
      std::string root = facts.path;
      if (root.size() >= kProtocol.size()) {
        root.erase(root.size() - kProtocol.size());
      }
      const std::filesystem::path dir =
          std::filesystem::path(root) / "tests" / "serve";
      std::string corpus;
      if (!read_corpus(dir, corpus)) {
        out.push_back(Finding{
            std::string(name()), repo_relative(facts.path),
            facts.wire_codes.front().line, 0,
            "conformance corpus directory tests/serve/ not found; every "
            "ErrorCode needs a pinned .req/.resp fixture"});
        continue;
      }
      for (const WireCode& code : facts.wire_codes) {
        const std::string wire = wire_name(code.enumerator);
        if (corpus.find("\"code\":\"" + wire + "\"") != std::string::npos) {
          continue;
        }
        out.push_back(Finding{
            std::string(name()), repo_relative(facts.path), code.line, 0,
            "error code '" + wire + "' (" + code.enumerator + ") has no "
                "conformance fixture: no tests/serve/*.resp contains "
                "\"code\":\"" + wire + "\"; add a pinned .req/.resp pair "
                "that provokes it deterministically"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<ProjectRule> make_wire_errors_rule() {
  return std::make_unique<WireErrorsRule>();
}

}  // namespace rme::analyze
