// lock-order (cross-TU): inconsistent mutex acquisition order is the
// classic two-thread deadlock — thread 1 holds A and wants B, thread 2
// holds B and wants A.  Single-file rules cannot see it: the two
// nestings usually live in different translation units.
//
// The fact extractor (index.cpp) records, per file, every RAII guard
// site and every acquired-before edge (guard B constructed while
// guard A's scope is still open ⇒ edge A→B).  This rule merges the
// edges from all files into one project-wide acquired-before graph
// over normalized mutex names and reports:
//
//   * order inversion — both A→B and B→A exist.  One finding per
//     unordered mutex pair, citing both witness sites (file:line each
//     way), anchored at the lexicographically first witness;
//   * cycle — a strongly connected component of ≥3 mutexes with no
//     direct inversion inside it (A→B→C→A).  Pairwise inversions are
//     reported by the first shape; this catches the rest.
//
// Suppression: an edge is born suppressed when either endpoint's line
// carries a `lock-order` allow; suppressed edges never witness a
// finding.  std::scoped_lock's variadic form acquires atomically and
// contributes no internal edges — it is also the fix this rule's
// message recommends.

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "rme/analyze/include_graph.hpp"
#include "rme/analyze/rules.hpp"

namespace rme::analyze {
namespace {

/// One witness of "held `from`, then acquired `to`".
struct Witness {
  std::string file;  ///< Repo-relative.
  std::size_t from_line = 0, from_column = 0;
  std::size_t to_line = 0, to_column = 0;
};

bool witness_before(const Witness& a, const Witness& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.to_line != b.to_line) return a.to_line < b.to_line;
  return a.to_column < b.to_column;
}

std::string site(const Witness& w) {
  return w.file + ":" + std::to_string(w.to_line);
}

class LockOrderRule final : public ProjectRule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lock-order";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "mutexes acquired in inconsistent order across the project "
           "(deadlock risk); acquire in one global order or use "
           "std::scoped_lock";
  }
  [[nodiscard]] std::string_view explain() const noexcept override {
    return "If one code path locks A then B while another locks B then "
           "A, two threads can each hold one and wait forever on the "
           "other — the classic deadlock, invisible to per-file review "
           "because the two nestings usually live in different "
           "translation units.  This rule merges every RAII guard "
           "nesting in the project into one acquired-before graph over "
           "normalized mutex names and reports direct inversions and "
           "longer cycles (A->B->C->A).  Safe replacements: pick one "
           "global acquisition order and route every path through it, or "
           "acquire the whole set atomically with std::scoped_lock(m1, "
           "m2, ...), which contributes no internal edges.  Mutex "
           "identity is lexical (same normalized member name aliases "
           "across classes); a finding born from aliasing is the case "
           "for a scoped `rme-lint: allow(lock-order: <reason>)`.";
  }

  void check(const ProjectIndex& index,
             std::vector<Finding>& out) const override {
    // Merge per-file edges into ordered-pair → witnesses.  The map
    // key order makes every downstream walk deterministic.
    std::map<std::pair<std::string, std::string>, std::vector<Witness>>
        edges;
    for (const FileFacts& f : index.files) {
      const std::string rel = repo_relative(f.path);
      for (const LockEdge& e : f.lock_edges) {
        if (e.suppressed) continue;
        edges[{e.from, e.to}].push_back(Witness{
            rel, e.from_line, e.from_column, e.to_line, e.to_column});
      }
    }
    for (auto& [pair, ws] : edges) {
      std::sort(ws.begin(), ws.end(), witness_before);
    }

    // Shape 1: direct inversions.  Visit each unordered pair once.
    std::set<std::pair<std::string, std::string>> inverted;
    for (const auto& [pair, ws] : edges) {
      const auto& [a, b] = pair;
      if (a >= b) continue;  // The (b, a) iteration handles the rest.
      const auto rev = edges.find({b, a});
      if (rev == edges.end()) continue;
      inverted.insert(pair);
      const Witness& fwd = ws.front();
      const Witness& bwd = rev->second.front();
      const Witness& anchor = witness_before(fwd, bwd) ? fwd : bwd;
      out.push_back(Finding{
          std::string(name()), anchor.file, anchor.to_line,
          anchor.to_column,
          "mutexes '" + a + "' and '" + b + "' are acquired in both "
              "orders: '" + a + "' before '" + b + "' at " + site(fwd) +
              ", '" + b + "' before '" + a + "' at " + site(bwd) +
              "; pick one global order or acquire both with "
              "std::scoped_lock"});
    }

    // Shape 2: longer cycles.  Tarjan over the mutex-name graph; SCCs
    // of ≥3 whose members have no pairwise inversion already reported.
    std::vector<std::string> names;
    for (const auto& [pair, ws] : edges) {
      names.push_back(pair.first);
      names.push_back(pair.second);
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    std::map<std::string, std::size_t> id;
    for (std::size_t i = 0; i < names.size(); ++i) id[names[i]] = i;
    std::vector<std::vector<std::size_t>> adj(names.size());
    for (const auto& [pair, ws] : edges) {
      adj[id[pair.first]].push_back(id[pair.second]);
    }
    for (const std::vector<std::size_t>& scc :
         strongly_connected_components(adj)) {
      if (scc.size() < 3) continue;
      bool has_inversion = false;
      for (std::size_t i = 0; i < scc.size() && !has_inversion; ++i) {
        for (std::size_t j = i + 1; j < scc.size(); ++j) {
          std::pair<std::string, std::string> key{names[scc[i]],
                                                  names[scc[j]]};
          if (key.first > key.second) std::swap(key.first, key.second);
          if (inverted.count(key) != 0) {
            has_inversion = true;
            break;
          }
        }
      }
      if (has_inversion) continue;  // Already reported pairwise.
      std::string ring;
      Witness anchor;
      bool have_anchor = false;
      for (const std::size_t m : scc) {
        if (!ring.empty()) ring += " -> ";
        ring += "'" + names[m] + "'";
        for (const std::size_t n : scc) {
          const auto it = edges.find({names[m], names[n]});
          if (it == edges.end()) continue;
          const Witness& w = it->second.front();
          if (!have_anchor || witness_before(w, anchor)) {
            anchor = w;
            have_anchor = true;
          }
        }
      }
      if (!have_anchor) continue;
      out.push_back(Finding{
          std::string(name()), anchor.file, anchor.to_line,
          anchor.to_column,
          "acquisition cycle across " + ring +
              ": no global order exists, so three threads can "
              "deadlock; impose a single order or acquire the set "
              "with std::scoped_lock"});
    }
  }
};

}  // namespace

std::unique_ptr<ProjectRule> make_lock_order_rule() {
  return std::make_unique<LockOrderRule>();
}

}  // namespace rme::analyze
