#include "rme/analyze/index.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace rme::analyze {
namespace {

constexpr std::array<std::string_view, 4> kGuardTypes{
    "lock_guard", "scoped_lock", "unique_lock", "shared_lock"};

bool is_guard_type(const std::string& ident) {
  return std::find(kGuardTypes.begin(), kGuardTypes.end(), ident) !=
         kGuardTypes.end();
}

/// Skips a balanced template argument list.  `i` points at the `<`;
/// returns the index one past the matching `>`.  `>>` closes two
/// levels, mirroring the maximal-munch token the lexer emits.
std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t i) {
  int angle = 0;
  for (; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "<" || t == "<<") {
      angle += t == "<<" ? 2 : 1;
    } else if (t == ">" || t == ">>") {
      angle -= t == ">>" ? 2 : 1;
      if (angle <= 0) return i + 1;
    } else if (t == ";" || t == "{") {
      break;  // Not a template argument list after all.
    }
  }
  return i;
}

/// One constructor argument as a token slice [begin, end).
struct ArgSlice {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Splits the argument list starting at the `(` or `{` at `open` into
/// top-level comma-separated slices.  Returns the index one past the
/// closing delimiter, or `open` when no balanced list is found.
std::size_t split_args(const std::vector<Token>& toks, std::size_t open,
                       std::vector<ArgSlice>& out) {
  int nest = 0;
  std::size_t arg_begin = open + 1;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "(" || t == "{" || t == "[") {
      ++nest;
    } else if (t == ")" || t == "}" || t == "]") {
      --nest;
      if (nest == 0) {
        if (i > arg_begin) out.push_back(ArgSlice{arg_begin, i});
        return i + 1;
      }
    } else if (t == "," && nest == 1) {
      if (i > arg_begin) out.push_back(ArgSlice{arg_begin, i});
      arg_begin = i + 1;
    }
  }
  out.clear();
  return open;
}

/// Renders one argument slice as a normalized mutex expression:
/// `this->` is dropped, `->` flattens to `.`, address-of / dereference
/// decoration and grouping parens vanish.  Returns "" for slices that
/// are not a name path (e.g. a call result) — callers skip those.
std::string normalize_mutex(const std::vector<Token>& toks,
                            const ArgSlice& arg) {
  std::string out;
  for (std::size_t i = arg.begin; i < arg.end; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kIdent) {
      if (t.text == "this") continue;  // `this->m_` and `m_` are one mutex.
      out += t.text;
    } else if (t.text == "." || t.text == "->") {
      if (!out.empty() && out.back() != '.') out += '.';
    } else if (t.text == "::") {
      out += "::";
    } else if (t.text == "*" || t.text == "&" || t.text == "(" ||
               t.text == ")") {
      continue;  // Decoration, not identity.
    } else {
      return std::string{};  // Arithmetic, literals, calls: not a name.
    }
  }
  while (!out.empty() && out.back() == '.') out.pop_back();
  return out;
}

bool is_lock_tag(const std::string& name) {
  return name == "std::defer_lock" || name == "defer_lock" ||
         name == "std::adopt_lock" || name == "adopt_lock" ||
         name == "std::try_to_lock" || name == "try_to_lock";
}

/// One guard in scope: the mutexes it holds plus where it was declared.
struct ActiveGuard {
  std::vector<std::size_t> mutexes;  ///< Indices into facts.guard_sites.
  int depth = 0;                     ///< Brace depth of the declaration.
};

}  // namespace

FileFacts extract_facts(const SourceFile& file) {
  FileFacts facts;
  facts.path = file.path();
  const TokenScan& scan = file.tokens();
  const std::vector<Token>& toks = scan.tokens;
  facts.token_count = toks.size();

  facts.includes.reserve(scan.includes.size());
  for (const IncludeDirective& inc : scan.includes) {
    facts.includes.push_back(IncludeSite{
        inc.target, inc.line, inc.column, inc.angled,
        file.suppressed("layering", inc.line)});
  }

  // Walk the token stream tracking which RAII guards are in scope.  A
  // guard declared at brace depth d dies when the `}` closing depth d
  // goes by; a guard constructed while others live yields held→new
  // acquired-before edges.  std::scoped_lock's variadic arguments are
  // one atomic acquisition: edges from what was already held into each
  // of them, none among them.
  std::vector<ActiveGuard> active;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.text == "}" && t.kind == TokKind::kPunct) {
      while (!active.empty() && active.back().depth >= t.depth) {
        active.pop_back();
      }
      continue;
    }
    if (t.kind != TokKind::kIdent || !is_guard_type(t.text)) continue;
    // Reject member access (`x.lock_guard`) but allow `std::` and bare.
    if (i >= 1 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") {
      j = skip_template_args(toks, j);
    }
    // Named variable or a temporary: `guard g(m);` / `guard{m};`.
    if (j < toks.size() && toks[j].kind == TokKind::kIdent) ++j;
    if (j >= toks.size() || (toks[j].text != "(" && toks[j].text != "{")) {
      continue;
    }
    std::vector<ArgSlice> args;
    const std::size_t past = split_args(toks, j, args);
    if (past == j || args.empty()) continue;

    bool deferred = false;
    std::vector<std::size_t> group;  // guard_sites indices this guard holds.
    for (const ArgSlice& arg : args) {
      const std::string name = normalize_mutex(toks, arg);
      if (name.empty()) continue;
      if (is_lock_tag(name)) {
        // defer_lock constructs without acquiring; the eventual .lock()
        // is out of lexical reach, so the guard contributes nothing.
        if (name == "std::defer_lock" || name == "defer_lock") {
          deferred = true;
        }
        continue;
      }
      facts.guard_sites.push_back(GuardSite{
          name, t.text, t.line, t.column,
          file.suppressed("lock-order", t.line)});
      group.push_back(facts.guard_sites.size() - 1);
    }
    if (deferred || group.empty()) {
      i = past - 1;
      continue;
    }
    for (const ActiveGuard& held : active) {
      for (const std::size_t h : held.mutexes) {
        const GuardSite& from = facts.guard_sites[h];
        for (const std::size_t g : group) {
          const GuardSite& to = facts.guard_sites[g];
          if (from.mutex == to.mutex) continue;
          facts.lock_edges.push_back(LockEdge{
              from.mutex, to.mutex, from.line, from.column, to.line,
              to.column, from.suppressed || to.suppressed});
        }
      }
    }
    active.push_back(ActiveGuard{std::move(group), t.depth});
    i = past - 1;
  }

  extract_function_facts(file, facts);
  return facts;
}

std::string repo_relative(const std::string& path) {
  static constexpr std::array<std::string_view, 5> kRoots{
      "src", "tools", "bench", "tests", "examples"};
  std::size_t start = 0;
  while (start < path.size()) {
    std::size_t slash = path.find('/', start);
    if (slash == std::string::npos) slash = path.size();
    const std::string_view component(path.data() + start, slash - start);
    for (const std::string_view root : kRoots) {
      if (component == root) return path.substr(start);
    }
    start = slash + 1;
  }
  return path;
}

}  // namespace rme::analyze
