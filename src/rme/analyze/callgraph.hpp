#pragma once
// rme::analyze — the project call graph and its hot set.
//
// The hot-path rule family needs one shared question answered: which
// function definitions are reachable from a hot root?  Roots are
// definitions annotated `// rme-hot: <reason>` plus lambdas handed
// directly to exec::parallel_for / parallel_map / parallel_map_items
// (the pool invokes those once per index — they *are* the loop body).
// Reachability is lexical and name-based: a call site matches every
// definition in the project whose qualified name ends in the same last
// component.  That deliberately over-approximates (overloads and
// same-named methods of unrelated classes alias), which is the right
// bias for a lint: a false edge can be silenced with `rme-cold:` or a
// scoped allow, a missed edge silently hides a regression.
//
// Propagation stops at `// rme-cold: <reason>` boundaries, and
// definitions in tests/ and examples/ never join the graph — hot-path
// discipline is a src/tools/bench contract.
//
// Each rule in the family recomputes the hot set from the index; the
// computation is linear in functions + call sites and keeps ProjectRule
// stateless, which the parallel driver relies on.

#include <cstddef>
#include <string>
#include <vector>

#include "rme/analyze/index.hpp"

namespace rme::analyze {

/// One hot definition: where it lives and why it is hot.
struct HotFunction {
  const FileFacts* file = nullptr;   ///< Owning file's facts.
  const FunctionDef* def = nullptr;  ///< The hot definition.
  std::string trace;  ///< Deterministic chain, e.g. "Engine::handle -> emit".
};

/// Computes the hot set over a (path-sorted) project index.  Output
/// order follows the index — file order, then definition order — so
/// downstream findings are deterministic at any --jobs value.
[[nodiscard]] std::vector<HotFunction> compute_hot_set(
    const ProjectIndex& index);

}  // namespace rme::analyze
