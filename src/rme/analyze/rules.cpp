#include "rme/analyze/rules.hpp"

namespace rme::analyze {

const std::vector<const Rule*>& all_rules() {
  static const std::vector<std::unique_ptr<Rule>> owned = [] {
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(make_units_suffix_rule());
    rules.push_back(make_banned_globals_rule());
    rules.push_back(make_determinism_rule());
    rules.push_back(make_value_escape_rule());
    rules.push_back(make_lock_discipline_rule());
    rules.push_back(make_unchecked_io_rule());
    rules.push_back(make_suppression_hygiene_rule());
    return rules;
  }();
  static const std::vector<const Rule*> view = [] {
    std::vector<const Rule*> v;
    v.reserve(owned.size());
    for (const auto& r : owned) v.push_back(r.get());
    return v;
  }();
  return view;
}

const std::vector<const ProjectRule*>& all_project_rules() {
  static const std::vector<std::unique_ptr<ProjectRule>> owned = [] {
    std::vector<std::unique_ptr<ProjectRule>> rules;
    rules.push_back(make_layering_rule());
    rules.push_back(make_lock_order_rule());
    rules.push_back(make_alloc_in_hot_path_rule());
    rules.push_back(make_lock_in_hot_path_rule());
    rules.push_back(make_blocking_in_hot_path_rule());
    rules.push_back(make_format_in_hot_path_rule());
    rules.push_back(make_wire_errors_rule());
    return rules;
  }();
  static const std::vector<const ProjectRule*> view = [] {
    std::vector<const ProjectRule*> v;
    v.reserve(owned.size());
    for (const auto& r : owned) v.push_back(r.get());
    return v;
  }();
  return view;
}

const Rule* find_rule(std::string_view name) {
  for (const Rule* r : all_rules()) {
    if (r->name() == name) return r;
  }
  return nullptr;
}

const ProjectRule* find_project_rule(std::string_view name) {
  for (const ProjectRule* r : all_project_rules()) {
    if (r->name() == name) return r;
  }
  return nullptr;
}

std::string_view rules_fingerprint() {
  // kRevision is bumped by hand whenever any rule's logic or the fact
  // extractor changes shape — names alone cannot see that, and a stale
  // cache must not survive it.
  static constexpr std::string_view kRevision = "rev3";
  static const std::string fingerprint = [] {
    std::string fp(kRevision);
    for (const Rule* r : all_rules()) {
      fp += '|';
      fp += r->name();
    }
    for (const ProjectRule* r : all_project_rules()) {
      fp += '|';
      fp += r->name();
    }
    return fp;
  }();
  return fingerprint;
}

}  // namespace rme::analyze
