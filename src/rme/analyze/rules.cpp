#include "rme/analyze/rules.hpp"

namespace rme::analyze {

const std::vector<const Rule*>& all_rules() {
  static const std::vector<std::unique_ptr<Rule>> owned = [] {
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(make_units_suffix_rule());
    rules.push_back(make_banned_globals_rule());
    rules.push_back(make_determinism_rule());
    rules.push_back(make_value_escape_rule());
    rules.push_back(make_lock_discipline_rule());
    rules.push_back(make_unchecked_io_rule());
    rules.push_back(make_suppression_hygiene_rule());
    return rules;
  }();
  static const std::vector<const Rule*> view = [] {
    std::vector<const Rule*> v;
    v.reserve(owned.size());
    for (const auto& r : owned) v.push_back(r.get());
    return v;
  }();
  return view;
}

const Rule* find_rule(std::string_view name) {
  for (const Rule* r : all_rules()) {
    if (r->name() == name) return r;
  }
  return nullptr;
}

}  // namespace rme::analyze
