#include "rme/analyze/baseline.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "rme/analyze/cache.hpp"
#include "rme/analyze/index.hpp"

namespace rme::analyze {
namespace {

/// The drift-stable identity of a finding, before occurrence
/// disambiguation: rule, repo-relative file, message hash.
std::string identity_key(const Finding& f) {
  std::ostringstream key;
  key << f.rule << "|" << repo_relative(f.file) << "|" << std::hex
      << fnv1a64(f.message);
  return key.str();
}

}  // namespace

std::string finding_fingerprint(const Finding& f, std::size_t occurrence) {
  return identity_key(f) + "|" + std::to_string(occurrence);
}

Baseline Baseline::load(const std::filesystem::path& file,
                        std::string* error) {
  Baseline baseline;
  std::ifstream in(file);
  if (!in) return baseline;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const std::size_t tab = line.find('\t'); tab != std::string::npos) {
      line.resize(tab);  // Human excerpt, not part of the fingerprint.
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty() || line.front() == '#') continue;
    // A fingerprint has exactly three '|' separators.
    std::size_t bars = 0;
    for (const char c : line) bars += c == '|' ? 1 : 0;
    if (bars != 3) {
      if (error != nullptr && error->empty()) {
        *error = file.string() + ":" + std::to_string(lineno) +
                 ": malformed baseline entry '" + line + "'";
      }
      return Baseline{};
    }
    baseline.entries_.insert(line);
  }
  return baseline;
}

std::vector<Finding> Baseline::filter(std::vector<Finding> findings,
                                      std::size_t* baselined) const {
  std::map<std::string, std::size_t> occurrence;
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  std::size_t removed = 0;
  for (Finding& f : findings) {
    const std::string key = identity_key(f);
    const std::size_t occ = occurrence[key]++;
    if (entries_.count(key + "|" + std::to_string(occ)) != 0) {
      ++removed;
    } else {
      kept.push_back(std::move(f));
    }
  }
  if (baselined != nullptr) *baselined = removed;
  return kept;
}

std::string Baseline::render(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "# rme_analyze baseline: accepted findings, one fingerprint per\n"
         "# line (rule|file|message-hash|occurrence).  Text after a tab\n"
         "# is a human excerpt and ignored.  Regenerate with\n"
         "# rme_analyze --write-baseline=<this file> <paths>; burn down\n"
         "# by fixing the cited site and deleting its line.\n";
  std::map<std::string, std::size_t> occurrence;
  for (const Finding& f : findings) {
    const std::string key = identity_key(f);
    const std::size_t occ = occurrence[key]++;
    std::string excerpt = f.message.substr(0, 70);
    for (char& c : excerpt) {
      if (c == '\n' || c == '\t') c = ' ';
    }
    out << key << "|" << occ << "\t" << repo_relative(f.file) << ":"
        << f.line << " " << excerpt << "\n";
  }
  return out.str();
}

}  // namespace rme::analyze
