#pragma once
// rme::analyze — the checked-in findings baseline.
//
// A baseline is the set of findings a project has decided to live with
// (for now): CI runs the analyzer with `--baseline=<file>` and fails
// only on findings *not* in the set, so new debt is blocked while old
// debt is visible and burn-downable (delete lines from the baseline as
// sites get fixed; regenerate wholesale with `--write-baseline`).
//
// Entries are fingerprints, not line numbers:
//
//   <rule>|<repo-relative path>|<fnv1a64(message) hex>|<occurrence>
//
// so unrelated edits that shift a finding down the file do not
// invalidate the baseline, and an absolute-path ctest invocation and a
// relative-path CI invocation agree on identity.  `occurrence`
// disambiguates identical findings in one file (0-based, in report
// order).  The trade-off: a finding whose *message* embeds drifting
// detail (lock-order cites peer file:line sites) re-fingerprints when
// that detail moves — conservative in the right direction, since a
// moved witness deserves a fresh look.
//
// Each line may carry a tab plus a human-readable excerpt; everything
// from the first tab on is ignored by the parser, as are blank lines
// and `#` comments.

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "rme/analyze/finding.hpp"

namespace rme::analyze {

/// The fingerprint of `f` as its `occurrence`-th identical instance.
[[nodiscard]] std::string finding_fingerprint(const Finding& f,
                                              std::size_t occurrence);

class Baseline {
 public:
  /// Reads a baseline file.  A missing file is an empty baseline; a
  /// malformed line is reported through `error` (first one wins) and
  /// the baseline loads as empty so CI fails loudly rather than
  /// silently admitting everything.
  [[nodiscard]] static Baseline load(const std::filesystem::path& file,
                                     std::string* error);

  /// Returns the findings not covered by the baseline, preserving
  /// order; `baselined` (if non-null) receives the number removed.
  /// `findings` must be the full report in final report order —
  /// occurrence numbering depends on it.
  [[nodiscard]] std::vector<Finding> filter(std::vector<Finding> findings,
                                            std::size_t* baselined) const;

  /// Renders `findings` (in final report order) as a baseline file.
  [[nodiscard]] static std::string render(
      const std::vector<Finding>& findings);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::set<std::string> entries_;
};

}  // namespace rme::analyze
