#pragma once
// rme::analyze — the pluggable rule interface.
//
// A rule scans one SourceFile at a time through the masked code view
// (comments and literal contents are spaces, so naive token matches are
// safe) and emits findings.  Rules do not handle suppressions — the
// analyzer filters findings against the file's allow directives
// afterwards — and must not keep per-file state between check() calls.
//
// To add a rule: implement this interface in a new
// src/rme/analyze/rule_<name>.cpp, declare its factory in rules.hpp,
// and append it to make_all_rules() in rules.cpp.  docs/ANALYSIS.md
// walks through a complete example.

#include <string_view>
#include <vector>

#include "rme/analyze/finding.hpp"
#include "rme/analyze/source.hpp"

namespace rme::analyze {

class Rule {
 public:
  Rule() = default;
  Rule(const Rule&) = delete;
  Rule& operator=(const Rule&) = delete;
  virtual ~Rule() = default;

  /// Stable kebab-case identifier used by --rule= and allow(...).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  /// One-line summary for --list-rules.
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;
  /// One-paragraph rationale plus safe-replacement guidance, rendered
  /// verbatim by `rme_analyze --explain=<rule>`.
  [[nodiscard]] virtual std::string_view explain() const noexcept = 0;
  /// Appends this rule's findings for `file` to `out`.
  virtual void check(const SourceFile& file,
                     std::vector<Finding>& out) const = 0;
};

}  // namespace rme::analyze
