#include "rme/analyze/include_graph.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace rme::analyze {
namespace {

/// The declared layer DAG.  Order matters only for diagnostics; every
/// module implicitly allows itself.  Modules absent from this table
/// ("tools", "bench", "tests", "examples", the "rme" umbrella) are
/// unconstrained consumers.
struct Layer {
  std::string_view module;
  std::vector<std::string_view> allowed;
};

const std::vector<Layer>& layers() {
  static const std::vector<Layer> kLayers = {
      {"core", {}},
      {"obs", {}},
      {"cli", {}},
      {"exec", {"obs"}},
      {"sim", {"core"}},
      {"report", {"core"}},
      {"analyze", {"exec", "obs"}},
      {"fit", {"core", "sim", "exec", "obs"}},
      {"power", {"core", "sim", "fit", "exec", "obs"}},
      {"ubench", {"core", "sim", "power"}},
      {"fmm", {"core", "sim", "fit", "ubench", "exec", "obs"}},
      {"artifact", {"core", "sim", "power", "fit", "report", "cli", "obs"}},
      {"serve", {"core", "sim", "fit", "exec", "obs", "cli", "artifact"}},
  };
  return kLayers;
}

const Layer* find_layer(const std::string& module) {
  for (const Layer& l : layers()) {
    if (module == l.module) return &l;
  }
  return nullptr;
}

}  // namespace

std::string module_of(const std::string& repo_rel) {
  static constexpr std::string_view kLib = "src/rme/";
  if (repo_rel.compare(0, kLib.size(), kLib) == 0) {
    const std::size_t start = kLib.size();
    const std::size_t slash = repo_rel.find('/', start);
    if (slash == std::string::npos) return "rme";  // src/rme/rme.hpp et al.
    return repo_rel.substr(start, slash - start);
  }
  static constexpr std::array<std::string_view, 4> kTrees{
      "tools/", "bench/", "tests/", "examples/"};
  for (const std::string_view tree : kTrees) {
    if (repo_rel.compare(0, tree.size(), tree) == 0) {
      return std::string(tree.substr(0, tree.size() - 1));
    }
  }
  return std::string{};
}

bool layer_allows(const std::string& from, const std::string& to) {
  if (from == to) return true;
  const Layer* layer = find_layer(from);
  if (layer == nullptr) return true;  // Unconstrained consumer.
  for (const std::string_view a : layer->allowed) {
    if (to == a) return true;
  }
  return false;
}

std::string allowed_list(const std::string& module) {
  const Layer* layer = find_layer(module);
  if (layer == nullptr) return "*";
  if (layer->allowed.size() == 0) return "nothing";
  std::string out;
  for (const std::string_view a : layer->allowed) {
    if (!out.empty()) out += ", ";
    out += a;
  }
  return out;
}

IncludeGraph build_include_graph(const ProjectIndex& index) {
  IncludeGraph graph;
  graph.files.reserve(index.files.size());
  for (const FileFacts& f : index.files) {
    graph.files.push_back(repo_relative(f.path));
  }
  std::sort(graph.files.begin(), graph.files.end());
  graph.files.erase(std::unique(graph.files.begin(), graph.files.end()),
                    graph.files.end());
  graph.modules.reserve(graph.files.size());
  std::map<std::string, std::size_t> by_path;
  for (std::size_t i = 0; i < graph.files.size(); ++i) {
    graph.modules.push_back(module_of(graph.files[i]));
    by_path.emplace(graph.files[i], i);
  }

  for (const FileFacts& f : index.files) {
    const auto from_it = by_path.find(repo_relative(f.path));
    if (from_it == by_path.end()) continue;
    const std::size_t from = from_it->second;
    for (const IncludeSite& inc : f.includes) {
      if (inc.angled) continue;  // System headers are out of scope.
      // The repo's include root is src/: `#include "rme/core/units.hpp"`
      // names src/rme/core/units.hpp.  Fixture corpora use verbatim
      // relative targets, so try those second.
      auto to_it = by_path.find("src/" + inc.target);
      if (to_it == by_path.end()) to_it = by_path.find(inc.target);
      if (to_it == by_path.end()) continue;
      if (to_it->second == from) continue;
      graph.edges.push_back(IncludeGraph::Edge{
          from, to_it->second, inc.line, inc.column, inc.suppressed});
    }
  }
  std::sort(graph.edges.begin(), graph.edges.end(),
            [](const IncludeGraph::Edge& a, const IncludeGraph::Edge& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.line != b.line) return a.line < b.line;
              return a.column < b.column;
            });
  return graph;
}

std::vector<std::vector<std::size_t>> strongly_connected_components(
    const std::vector<std::vector<std::size_t>>& adj) {
  // Iterative Tarjan; recursion would be fine for module graphs but
  // file-level include chains can get deep.
  const std::size_t n = adj.size();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> idx(n, kUnvisited), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> sccs;
  std::size_t counter = 0;

  struct Frame {
    std::size_t v = 0;
    std::size_t next_edge = 0;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (idx[root] != kUnvisited) continue;
    std::vector<Frame> frames{Frame{root, 0}};
    idx[root] = low[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next_edge < adj[f.v].size()) {
        const std::size_t w = adj[f.v][f.next_edge++];
        if (idx[w] == kUnvisited) {
          idx[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], idx[w]);
        }
      } else {
        if (low[f.v] == idx[f.v]) {
          std::vector<std::size_t> scc;
          for (;;) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
            if (w == f.v) break;
          }
          if (scc.size() >= 2) {
            std::sort(scc.begin(), scc.end());
            sccs.push_back(std::move(scc));
          }
        }
        const std::size_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  std::sort(sccs.begin(), sccs.end(),
            [](const std::vector<std::size_t>& a,
               const std::vector<std::size_t>& b) {
              return a.front() < b.front();
            });
  return sccs;
}

std::vector<std::vector<std::size_t>> include_cycles(
    const IncludeGraph& graph) {
  std::vector<std::vector<std::size_t>> adj(graph.files.size());
  for (const IncludeGraph::Edge& e : graph.edges) {
    adj[e.from].push_back(e.to);
  }
  return strongly_connected_components(adj);
}

std::string write_dot(const IncludeGraph& graph) {
  // Aggregate file edges to module edges; files outside any module
  // (module "") are skipped.
  std::set<std::string> nodes;
  std::map<std::pair<std::string, std::string>, std::size_t> edges;
  for (std::size_t i = 0; i < graph.files.size(); ++i) {
    if (!graph.modules[i].empty()) nodes.insert(graph.modules[i]);
  }
  for (const IncludeGraph::Edge& e : graph.edges) {
    const std::string& from = graph.modules[e.from];
    const std::string& to = graph.modules[e.to];
    if (from.empty() || to.empty() || from == to) continue;
    ++edges[{from, to}];
  }
  std::string out = "digraph rme_includes {\n  rankdir=BT;\n"
                    "  node [shape=box, fontname=\"monospace\"];\n";
  for (const std::string& n : nodes) {
    out += "  \"" + n + "\";\n";
  }
  for (const auto& [key, count] : edges) {
    const auto& [from, to] = key;
    out += "  \"" + from + "\" -> \"" + to + "\" [label=\"" +
           std::to_string(count) + "\"";
    if (!layer_allows(from, to)) {
      out += ", color=red, penwidth=2";
    }
    out += "];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace rme::analyze
