// layering (cross-TU): the module dependency architecture, enforced.
//
// Two finding shapes:
//
//   * back-edge — a resolved project include whose (from-module,
//     to-module) pair is outside the declared layer DAG
//     (include_graph.hpp).  The finding sits on the include directive
//     and names both modules plus the module's allowed set;
//   * cycle — a strongly connected component of ≥2 files in the
//     include graph.  One finding per cycle, anchored at the
//     lexicographically smallest file's offending include, citing
//     every member.
//
// Suppression: a `layering` allow on the include line silences the
// back-edge; a cycle is silenced only when every edge inside the SCC
// is suppressed (anything less and the cycle still exists).
//
// ROADMAP context: the planned rme::serve module must sit above report
// and artifact without growing hidden upward edges — this rule is the
// gate that keeps that graph honest before serve lands.

#include <algorithm>
#include <memory>
#include <string>

#include "rme/analyze/include_graph.hpp"
#include "rme/analyze/rules.hpp"

namespace rme::analyze {
namespace {

class LayeringRule final : public ProjectRule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "layering";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "include edge violates the declared module layer DAG, or "
           "project headers form an include cycle";
  }
  [[nodiscard]] std::string_view explain() const noexcept override {
    return "The library's modules form a declared DAG (core at the "
           "bottom, then model/exec, up through fit/session/serve; the "
           "table lives in include_graph.cpp and docs/ANALYSIS.md).  An "
           "include edge against that order — core reaching up into fit, "
           "or a header cycle — makes the lower layer untestable in "
           "isolation and turns every change into a potential rebuild of "
           "everything, which is how layered codebases rot into a ball.  "
           "Safe replacements: depend on the lower layer's abstraction "
           "instead of reaching up (invert the dependency), move the "
           "shared type down into the layer both sides may use, or pass "
           "the upper-layer behavior in as a callback/interface.  If an "
           "edge is genuinely intended, change the declared DAG in "
           "include_graph.cpp — in review — rather than suppressing "
           "file by file.";
  }

  void check(const ProjectIndex& index,
             std::vector<Finding>& out) const override {
    const IncludeGraph graph = build_include_graph(index);

    for (const IncludeGraph::Edge& e : graph.edges) {
      if (e.suppressed) continue;
      const std::string& from_mod = graph.modules[e.from];
      const std::string& to_mod = graph.modules[e.to];
      if (from_mod.empty() || to_mod.empty()) continue;
      if (layer_allows(from_mod, to_mod)) continue;
      out.push_back(Finding{
          std::string(name()), graph.files[e.from], e.line, e.column,
          "module '" + from_mod + "' may not include '" +
              graph.files[e.to] + "' (module '" + to_mod +
              "'); declared dependencies of '" + from_mod + "': " +
              allowed_list(from_mod)});
    }

    for (const std::vector<std::size_t>& scc : include_cycles(graph)) {
      std::string members;
      bool all_suppressed = true;
      for (const std::size_t f : scc) {
        if (!members.empty()) members += " -> ";
        members += graph.files[f];
      }
      // Anchor at the smallest member's first edge that stays inside
      // the SCC; a cycle is suppressed only when every internal edge is.
      std::size_t line = 0, column = 0;
      for (const IncludeGraph::Edge& e : graph.edges) {
        const bool from_in =
            std::binary_search(scc.begin(), scc.end(), e.from);
        const bool to_in = std::binary_search(scc.begin(), scc.end(), e.to);
        if (!from_in || !to_in) continue;
        if (!e.suppressed) all_suppressed = false;
        if (e.from == scc.front() && line == 0) {
          line = e.line;
          column = e.column;
        }
      }
      if (all_suppressed) continue;
      out.push_back(Finding{
          std::string(name()), graph.files[scc.front()], line, column,
          "include cycle: " + members +
              "; break the cycle with a forward declaration or by "
              "moving the shared type down a layer"});
    }
  }
};

}  // namespace

std::unique_ptr<ProjectRule> make_layering_rule() {
  return std::make_unique<LayeringRule>();
}

}  // namespace rme::analyze
