// value-escape: `.value()` unwraps a Quantity to a raw double.  The
// units.hpp policy reserves that hatch for numeric kernels and
// normalized scalars inside translation units; a public header that
// unwraps leaks raw doubles straight into the API surface.  Findings
// fire only in headers under src/rme/ — .cpp kernels stay free — and
// rme/core/units.hpp itself is exempt, being the algebra's own
// implementation.

#include <regex>
#include <string>

#include "rme/analyze/rule.hpp"

namespace rme::analyze {
namespace {

bool is_units_header(const std::string& path) {
  static constexpr std::string_view kSuffix = "rme/core/units.hpp";
  return path.size() >= kSuffix.size() &&
         path.compare(path.size() - kSuffix.size(), kSuffix.size(),
                      kSuffix) == 0;
}

class ValueEscapeRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "value-escape";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return ".value() escape hatch in a public header; unwrap inside .cpp "
           "numeric kernels instead";
  }

  void check(const SourceFile& file,
             std::vector<Finding>& out) const override {
    if (!file.public_header() || is_units_header(file.path())) return;
    static const std::regex kValue(R"(\.\s*value\s*\(\s*\))");
    for (std::size_t line = 1; line <= file.line_count(); ++line) {
      const std::string& code = file.code_line(line);
      for (auto it = std::sregex_iterator(code.begin(), code.end(), kValue);
           it != std::sregex_iterator(); ++it) {
        out.push_back(Finding{
            std::string(name()), file.path(), line,
            static_cast<std::size_t>(it->position(0)) + 1,
            ".value() in a public header leaks a raw double through the "
            "API; move the unwrap into a .cpp numeric kernel or justify "
            "it with a reasoned allow"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_value_escape_rule() {
  return std::make_unique<ValueEscapeRule>();
}

}  // namespace rme::analyze
