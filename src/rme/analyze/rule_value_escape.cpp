// value-escape: `.value()` unwraps a Quantity to a raw double.  The
// units.hpp policy reserves that hatch for numeric kernels and
// normalized scalars inside translation units; a public header that
// unwraps leaks raw doubles straight into the API surface.  Findings
// fire only in headers under src/rme/ — .cpp kernels stay free — and
// rme/core/units.hpp itself is exempt, being the algebra's own
// implementation.  Token-stream port: the pattern is the token quad
// `. value ( )`.

#include <string>
#include <string_view>

#include "rme/analyze/rule.hpp"

namespace rme::analyze {
namespace {

bool is_units_header(const std::string& path) {
  static constexpr std::string_view kSuffix = "rme/core/units.hpp";
  return path.size() >= kSuffix.size() &&
         path.compare(path.size() - kSuffix.size(), kSuffix.size(),
                      kSuffix) == 0;
}

class ValueEscapeRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "value-escape";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return ".value() escape hatch in a public header; unwrap inside .cpp "
           "numeric kernels instead";
  }
  [[nodiscard]] std::string_view explain() const noexcept override {
    return "Calling .value() strips a typed quantity back to a raw "
           "double.  Inside a .cpp numeric kernel that is the intended "
           "arithmetic boundary; in a public header it leaks untyped "
           "values into every includer, so the unit-safety the Quantity "
           "types exist for quietly ends at the API surface and callers "
           "re-wrap (or forget to) with no compiler help.  Safe "
           "replacement: keep header-level interfaces in Quantity terms "
           "end to end and move the unwrap into the implementation file "
           "next to the arithmetic that needs it; if a header truly must "
           "unwrap (constexpr math), carry a scoped "
           "`rme-lint: allow(value-escape: <reason>)` explaining why.";
  }

  void check(const SourceFile& file,
             std::vector<Finding>& out) const override {
    if (!file.public_header() || is_units_header(file.path())) return;
    const std::vector<Token>& toks = file.tokens().tokens;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (toks[i].text != "." || toks[i].kind != TokKind::kPunct) continue;
      if (toks[i + 1].kind != TokKind::kIdent ||
          toks[i + 1].text != "value") {
        continue;
      }
      if (toks[i + 2].text != "(" || toks[i + 3].text != ")") continue;
      if (toks[i + 3].line != toks[i].line) continue;
      out.push_back(Finding{
          std::string(name()), file.path(), toks[i].line, toks[i].column,
          ".value() in a public header leaks a raw double through the "
          "API; move the unwrap into a .cpp numeric kernel or justify "
          "it with a reasoned allow"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_value_escape_rule() {
  return std::make_unique<ValueEscapeRule>();
}

}  // namespace rme::analyze
