#pragma once
// rme::analyze — the shared token-stream layer on top of SourceFile
// masking.
//
// The masked code view (source.hpp) already guarantees that comments
// and literal contents are spaces; this layer lexes that view once per
// file into a flat token stream so rules match *structure* instead of
// re-running per-rule regexes over raw text:
//
//   * tokens      — identifiers, numbers, and punctuation with 1-based
//                   line/column and the brace depth in effect at the
//                   token.  Multi-char operators that rules care about
//                   (`::`, `->`, `<<`, `>>`) are single tokens;
//   * includes    — `#include` directives with the target path and
//                   quote style.  The directive skeleton is recognised
//                   on the masked view (so a commented-out include never
//                   registers) while the target itself is read back
//                   from the raw line, because string masking blanks
//                   quoted paths;
//   * brace depth — `{` tokens carry the depth they open, `}` tokens
//                   the depth they close, every other token the depth
//                   it lives at.  File scope is depth 0; namespaces
//                   count like any other brace.
//
// SourceFile owns one TokenScan per file (SourceFile::tokens()), built
// at lex time; rules and the cross-TU fact extractor (index.hpp) share
// it and never re-tokenize.

#include <cstddef>
#include <string>
#include <vector>

namespace rme::analyze {

enum class TokKind {
  kIdent,   ///< [A-Za-z_][A-Za-z0-9_]*
  kNumber,  ///< pp-number: digits plus trailing ident chars / separators
  kPunct,   ///< everything else; `::` `->` `<<` `>>` are one token
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::size_t line = 0;    ///< 1-based.
  std::size_t column = 0;  ///< 1-based.
  int depth = 0;           ///< Brace depth in effect at this token.
};

/// One `#include` directive.
struct IncludeDirective {
  std::string target;      ///< The path between the delimiters.
  bool angled = false;     ///< `<...>` rather than `"..."`.
  std::size_t line = 0;    ///< 1-based line of the directive.
  std::size_t column = 0;  ///< 1-based column of the `#`.
};

/// The token stream of one file: flat token vector in source order plus
/// the include directives.
struct TokenScan {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;

  /// Index of the first token on `line` (1-based) in `tokens`, or
  /// tokens.size() when the line has none.  O(log n).
  [[nodiscard]] std::size_t first_token_on_line(std::size_t line) const;

  /// True when any identifier token on `line` equals `ident`.
  [[nodiscard]] bool line_has_ident(std::size_t line,
                                    const std::string& ident) const;
};

/// Lexes the masked code lines into a TokenScan; `raw_lines` supplies
/// the unmasked text of include targets.  Both vectors must be the
/// same length (SourceFile guarantees this).
[[nodiscard]] TokenScan scan_tokens(const std::vector<std::string>& code_lines,
                                    const std::vector<std::string>& raw_lines);

}  // namespace rme::analyze
