#pragma once
// rme::analyze — drives the rule registry over a file set.
//
// Two pipelines share this header:
//
//   * analyze_paths — the original per-file pass: walk, lex, run the
//     per-file rules, filter suppressions.  Kept as the simple
//     embedding API and the fixture-test entry point;
//   * analyze_project — the cross-TU engine: the per-file pass runs in
//     parallel through rme::exec::parallel_map (byte-identical output
//     at any --jobs value, because every file writes its own slot and
//     the merge is index-ordered), an incremental content-hash cache
//     (cache.hpp) skips unchanged files, FileFacts feed the project
//     rules (layering, lock-order), and a checked-in baseline
//     (baseline.hpp) separates accepted debt from new findings.
//
// tools/rme_analyze is a thin CLI over analyze_project;
// tests/test_analyze.cpp drives both over an in-repo fixture corpus.

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "rme/analyze/finding.hpp"
#include "rme/analyze/include_graph.hpp"
#include "rme/analyze/index.hpp"
#include "rme/analyze/rule.hpp"

namespace rme::obs {
class Tracer;  // rme/obs/trace.hpp — optional instrumentation sink
}  // namespace rme::obs

namespace rme::analyze {

struct Report {
  std::vector<Finding> findings;      ///< Unsuppressed, in file order.
  std::size_t files_scanned = 0;
  std::vector<std::string> rules_run;
  std::vector<std::string> errors;    ///< Unreadable paths/files.
};

/// Resolves --rule selectors (rule names; empty = every registered
/// rule).  Throws std::invalid_argument on an unknown name.
[[nodiscard]] std::vector<const Rule*> select_rules(
    const std::vector<std::string>& selectors);

/// Collects the C++ files (.hpp/.h/.hh/.hxx/.cpp/.cc/.cxx/.c) under
/// each path, sorted; a path that is itself a regular file is taken
/// as-is.  Missing paths are recorded in `errors`.
[[nodiscard]] std::vector<std::filesystem::path> collect_files(
    const std::vector<std::filesystem::path>& paths,
    std::vector<std::string>& errors);

/// Runs `rules` over one lexed file, dropping suppressed findings.
[[nodiscard]] std::vector<Finding> run_rules(
    const SourceFile& file, const std::vector<const Rule*>& rules);

/// Full pipeline: collect, lex, run, filter.
[[nodiscard]] Report analyze_paths(
    const std::vector<std::filesystem::path>& paths,
    const std::vector<const Rule*>& rules);

/// Human-readable findings + summary line.
void write_text(std::ostream& os, const Report& report);
/// Machine-readable single JSON object with a "findings" array.
void write_json(std::ostream& os, const Report& report);

/// Configuration for the cross-TU pipeline.
struct ProjectOptions {
  /// Worker count for the per-file pass: 1 = inline, 0 = hardware.
  /// Output is byte-identical across values (the determinism ctest
  /// asserts jobs=1 vs jobs=4).
  unsigned jobs = 1;
  /// Rule names (per-file or project); empty = the full registry.
  std::vector<std::string> selectors;
  /// Incremental cache file; empty disables caching.
  std::filesystem::path cache_path;
  /// Baseline file; empty disables baseline filtering.
  std::filesystem::path baseline_path;
  /// Optional instrumentation: analyze.{files,tokens,findings,
  /// cache_hits} counters and per-rule `analyze.rule.<name>` latency
  /// histograms.  Never affects findings.
  rme::obs::Tracer* tracer = nullptr;
};

struct ProjectReport {
  /// Survived suppression and baseline, sorted by
  /// (file, line, column, rule, message).
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t tokens_scanned = 0;
  std::size_t cache_hits = 0;
  std::size_t baselined = 0;   ///< Findings absorbed by the baseline.
  std::vector<std::string> rules_run;  ///< Per-file then project rules.
  std::vector<std::string> errors;
  IncludeGraph graph;          ///< For --dot export.
};

/// Resolves selectors against both registries.  Throws
/// std::invalid_argument on an unknown name.
void select_all_rules(const std::vector<std::string>& selectors,
                      std::vector<const Rule*>& rules,
                      std::vector<const ProjectRule*>& project_rules);

/// The cross-TU pipeline (see the header comment).
[[nodiscard]] ProjectReport analyze_project(
    const std::vector<std::filesystem::path>& paths,
    const ProjectOptions& options);

/// Human-readable findings + summary (adds cache/baseline stats).
void write_text(std::ostream& os, const ProjectReport& report);
/// Single JSON object; schema docs/schema/rme_analyze.schema.json.
void write_json(std::ostream& os, const ProjectReport& report);
/// SARIF 2.1.0 (one run, one result per finding); schema
/// docs/schema/sarif-2.1.0-subset.schema.json.
void write_sarif(std::ostream& os, const ProjectReport& report);

}  // namespace rme::analyze
