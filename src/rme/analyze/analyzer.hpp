#pragma once
// rme::analyze — drives the rule registry over a file set.
//
// The analyzer walks the given paths (directories recurse; explicit
// files are scanned whatever their extension), lexes each C++ file into
// a SourceFile, runs the selected rules, filters findings through the
// file's reasoned suppressions, and reports.  tools/rme_analyze is a
// thin CLI over this; tests/test_analyze.cpp drives the same entry
// points over an in-repo fixture corpus.

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "rme/analyze/finding.hpp"
#include "rme/analyze/rule.hpp"

namespace rme::analyze {

struct Report {
  std::vector<Finding> findings;      ///< Unsuppressed, in file order.
  std::size_t files_scanned = 0;
  std::vector<std::string> rules_run;
  std::vector<std::string> errors;    ///< Unreadable paths/files.
};

/// Resolves --rule selectors (rule names; empty = every registered
/// rule).  Throws std::invalid_argument on an unknown name.
[[nodiscard]] std::vector<const Rule*> select_rules(
    const std::vector<std::string>& selectors);

/// Collects the C++ files (.hpp/.h/.hh/.hxx/.cpp/.cc/.cxx/.c) under
/// each path, sorted; a path that is itself a regular file is taken
/// as-is.  Missing paths are recorded in `errors`.
[[nodiscard]] std::vector<std::filesystem::path> collect_files(
    const std::vector<std::filesystem::path>& paths,
    std::vector<std::string>& errors);

/// Runs `rules` over one lexed file, dropping suppressed findings.
[[nodiscard]] std::vector<Finding> run_rules(
    const SourceFile& file, const std::vector<const Rule*>& rules);

/// Full pipeline: collect, lex, run, filter.
[[nodiscard]] Report analyze_paths(
    const std::vector<std::filesystem::path>& paths,
    const std::vector<const Rule*>& rules);

/// Human-readable findings + summary line.
void write_text(std::ostream& os, const Report& report);
/// Machine-readable single JSON object with a "findings" array.
void write_json(std::ostream& os, const Report& report);

}  // namespace rme::analyze
