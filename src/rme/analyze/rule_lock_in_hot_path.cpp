// lock-in-hot-path (cross-TU): mutex acquisition on the per-item
// paths.  A contended lock serializes exactly the loop the roofline
// model wants running at machine balance, and even an uncontended
// acquisition is an atomic RMW on a shared line — a per-iteration
// memory-traffic term the model does not price.
//
// The fact extractor tags every RAII guard construction
// (std::lock_guard / scoped_lock / unique_lock / shared_lock) as a
// "lock" op; this rule reports the ones inside definitions the
// call-graph walk (callgraph.hpp) reaches from a hot root.  The
// lock-order rule answers a different question (is the order globally
// consistent?); this one asks whether the acquisition belongs on the
// path at all.

#include <memory>
#include <string>
#include <vector>

#include "rme/analyze/callgraph.hpp"
#include "rme/analyze/rules.hpp"

namespace rme::analyze {
namespace {

class LockInHotPathRule final : public ProjectRule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lock-in-hot-path";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "mutex acquisition reachable from a hot root; move locking "
           "to the enqueue/drain boundary or use per-worker state";
  }
  [[nodiscard]] std::string_view explain() const noexcept override {
    return "A mutex on the hot path serializes the very loop the energy "
           "roofline wants running at machine balance: under contention "
           "workers convoy, and even uncontended the acquisition is an "
           "atomic read-modify-write on a shared cache line — per-item "
           "memory traffic the model does not price.  This rule flags "
           "every RAII guard construction (std::lock_guard, scoped_lock, "
           "unique_lock, shared_lock) inside a definition reachable from "
           "a `// rme-hot: <reason>` root or an exec::parallel_* callable. "
           "Safe replacements: partition the state per worker and merge "
           "once at the join, move the lock to the enqueue/drain boundary "
           "so it runs per batch instead of per item, or publish "
           "read-mostly state through a snapshot taken before the loop.  "
           "Locks that are structurally per-batch (the pool's own queue "
           "mutex) belong under a scoped "
           "`rme-lint: allow(lock-in-hot-path: <reason>)`.";
  }

  void check(const ProjectIndex& index,
             std::vector<Finding>& out) const override {
    for (const HotFunction& hf : compute_hot_set(index)) {
      const std::string rel = repo_relative(hf.file->path);
      for (const HotOp& op : hf.def->ops) {
        if (op.kind != "lock" || op.suppressed) continue;
        out.push_back(Finding{
            std::string(name()), rel, op.line, op.column,
            op.detail + " on the hot path via " + hf.trace +
                "; move locking to the enqueue/drain boundary or keep "
                "per-worker state and merge at the join"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<ProjectRule> make_lock_in_hot_path_rule() {
  return std::make_unique<LockInHotPathRule>();
}

}  // namespace rme::analyze
