#pragma once
// rme::analyze — project include graph and the declared layer DAG.
//
// The repo's architecture is a layered DAG over modules:
//
//   core ──────────────────────────────┐ (leaf: depends on nothing)
//   obs, cli ──────────────────────────┤ (leaves)
//   exec → obs                         │
//   sim, report → core                 │  middle layers
//   fit → core, sim, exec, obs         │
//   power → core, sim, fit, exec, obs  │
//   ubench → core, sim, power          │
//   fmm → core, sim, fit, ubench, exec, obs
//   analyze → exec, obs                │
//   artifact → core, sim, power, fit, report, cli, obs
//   rme (umbrella header) → *          │
//   tools, bench, tests, examples → *  ┘ (top: may use anything)
//
// build_include_graph() resolves each file's quoted includes against
// the scanned file set, maps files to modules, and exposes file-level
// edges.  The layering rule (rule_layering.cpp) turns edges that leave
// a module's allowed set — and include *cycles* — into findings; DOT
// export (write_dot) renders the module-level graph for docs and the
// golden test.

#include <cstddef>
#include <string>
#include <vector>

#include "rme/analyze/index.hpp"

namespace rme::analyze {

struct IncludeGraph {
  /// One resolved include: file `from` includes file `to` (indices
  /// into `files`), at the cited site.
  struct Edge {
    std::size_t from = 0;
    std::size_t to = 0;
    std::size_t line = 0;
    std::size_t column = 0;
    bool suppressed = false;
  };

  std::vector<std::string> files;    ///< Repo-relative, sorted, unique.
  std::vector<std::string> modules;  ///< modules[i] = module_of(files[i]).
  std::vector<Edge> edges;           ///< Sorted by (from, line, column).
};

/// Maps a repo-relative path to its module: `src/rme/<m>/...` → `<m>`,
/// the umbrella `src/rme/rme.hpp` → "rme", top-level trees to their
/// directory name ("tools", "bench", "tests", "examples"), anything
/// else → "".
[[nodiscard]] std::string module_of(const std::string& repo_rel);

/// True when the declared layer DAG lets module `from` include module
/// `to`.  Every module may use itself; unknown modules are
/// unconstrained (the layering rule reports only declared modules).
[[nodiscard]] bool layer_allows(const std::string& from,
                                const std::string& to);

/// The declared dependencies of `module`, comma-separated, for
/// diagnostics ("(allowed: core, sim)"); "(allowed: nothing)" for
/// leaves, "*" for unconstrained modules.
[[nodiscard]] std::string allowed_list(const std::string& module);

/// Builds the graph from extracted facts.  Quoted targets resolve
/// against the scanned set as `src/<target>` first (the repo's include
/// root) and verbatim second; unresolved and angled includes are
/// dropped — the graph covers the project, not the system.
[[nodiscard]] IncludeGraph build_include_graph(const ProjectIndex& index);

/// Tarjan strongly connected components over an adjacency list.
/// Returns only components of ≥2 nodes (the cyclic ones), each sorted
/// ascending, components ordered by smallest member.  Shared by the
/// include-cycle check here and the lock-order cycle check
/// (rule_lock_order.cpp).
[[nodiscard]] std::vector<std::vector<std::size_t>>
strongly_connected_components(
    const std::vector<std::vector<std::size_t>>& adj);

/// Strongly connected components with ≥2 files, i.e. include cycles.
/// Each cycle lists file indices sorted ascending; cycles are sorted
/// by their smallest member.  (Self-includes cannot happen: an edge to
/// oneself is dropped at build time.)
[[nodiscard]] std::vector<std::vector<std::size_t>> include_cycles(
    const IncludeGraph& graph);

/// Module-level DOT rendering, deterministic: nodes and edges sorted,
/// layer-violating edges drawn red and labeled.  Ends with '\n'.
[[nodiscard]] std::string write_dot(const IncludeGraph& graph);

}  // namespace rme::analyze
