// lock-discipline: manual .lock()/.unlock()/.try_lock() on a mutex
// leaks the lock on every early return and exception path; the repo
// standard is RAII guards (std::lock_guard, std::unique_lock,
// std::scoped_lock) throughout — see rme::exec::ThreadPool.
//
// Without type information the receiver is judged by name: identifiers
// containing "mutex"/"mtx" (any case) or conventionally mutex-named
// (m, m_, mu, mu_).  unique_lock variables named `lock`/`guard`/`lk`
// therefore keep their legitimate .unlock() calls.
//
// Token-stream port: the pattern is the token quad
// `<receiver> .|-> lock|unlock|try_lock (` on one line.
//
// The cross-TU companion rule `lock-order` (rule_lock_order.cpp) checks
// the *ordering* of the RAII guards this rule pushes code towards.

#include <cctype>
#include <string>

#include "rme/analyze/rule.hpp"

namespace rme::analyze {
namespace {

bool mutex_named(const std::string& ident) {
  std::string lower;
  lower.reserve(ident.size());
  for (const char c : ident) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower.find("mutex") != std::string::npos) return true;
  if (lower.find("mtx") != std::string::npos) return true;
  return lower == "m" || lower == "m_" || lower == "mu" || lower == "mu_";
}

bool lockish_method(const std::string& ident) {
  return ident == "lock" || ident == "unlock" || ident == "try_lock";
}

class LockDisciplineRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lock-discipline";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "raw .lock()/.unlock() on a mutex; hold it through an RAII "
           "guard instead";
  }
  [[nodiscard]] std::string_view explain() const noexcept override {
    return "A manual .lock() demands that every path out of the region — "
           "early returns, exceptions, added break statements — remembers "
           "the matching .unlock(); the one path that forgets leaves the "
           "mutex held forever and the next acquirer deadlocked.  RAII "
           "guards make release structural: the scope ends, the lock "
           "drops, on every path including unwinding.  Safe replacements: "
           "std::lock_guard for a plain critical section, std::scoped_lock "
           "to acquire several mutexes atomically, std::unique_lock when "
           "a condition variable needs to drop and reacquire.  Raw calls "
           "are also invisible to the cross-TU lock-order analysis, which "
           "models RAII guard scopes only.";
  }

  void check(const SourceFile& file,
             std::vector<Finding>& out) const override {
    const std::vector<Token>& toks = file.tokens().tokens;
    for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
      const Token& method = toks[i];
      if (method.kind != TokKind::kIdent || !lockish_method(method.text)) {
        continue;
      }
      const Token& access = toks[i - 1];
      const Token& receiver = toks[i - 2];
      if (access.text != "." && access.text != "->") continue;
      if (receiver.kind != TokKind::kIdent) continue;
      if (toks[i + 1].text != "(" || toks[i + 1].line != method.line) continue;
      if (receiver.line != method.line) continue;
      if (!mutex_named(receiver.text)) continue;
      out.push_back(Finding{
          std::string(name()), file.path(), receiver.line, receiver.column,
          "manual ." + method.text + "() on mutex '" + receiver.text +
              "' leaks the lock on exception paths; hold it through "
              "std::lock_guard / std::unique_lock / std::scoped_lock"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_lock_discipline_rule() {
  return std::make_unique<LockDisciplineRule>();
}

}  // namespace rme::analyze
