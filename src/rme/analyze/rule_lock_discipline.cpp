// lock-discipline: manual .lock()/.unlock()/.try_lock() on a mutex
// leaks the lock on every early return and exception path; the repo
// standard is RAII guards (std::lock_guard, std::unique_lock,
// std::scoped_lock) throughout — see rme::exec::ThreadPool.
//
// Without type information the receiver is judged by name: identifiers
// containing "mutex"/"mtx" (any case) or conventionally mutex-named
// (m, m_, mu, mu_).  unique_lock variables named `lock`/`guard`/`lk`
// therefore keep their legitimate .unlock() calls.

#include <cctype>
#include <regex>
#include <string>

#include "rme/analyze/rule.hpp"

namespace rme::analyze {
namespace {

bool mutex_named(const std::string& ident) {
  std::string lower;
  lower.reserve(ident.size());
  for (const char c : ident) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower.find("mutex") != std::string::npos) return true;
  if (lower.find("mtx") != std::string::npos) return true;
  return lower == "m" || lower == "m_" || lower == "mu" || lower == "mu_";
}

class LockDisciplineRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lock-discipline";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "raw .lock()/.unlock() on a mutex; hold it through an RAII "
           "guard instead";
  }

  void check(const SourceFile& file,
             std::vector<Finding>& out) const override {
    static const std::regex kCall(
        R"((^|[^A-Za-z0-9_])([A-Za-z_][A-Za-z0-9_]*)\s*(\.|->)\s*)"
        R"((try_lock|unlock|lock)\s*\()");
    for (std::size_t line = 1; line <= file.line_count(); ++line) {
      const std::string& code = file.code_line(line);
      for (auto it = std::sregex_iterator(code.begin(), code.end(), kCall);
           it != std::sregex_iterator(); ++it) {
        const std::string receiver = (*it)[2].str();
        const std::string method = (*it)[4].str();
        if (!mutex_named(receiver)) continue;
        out.push_back(Finding{
            std::string(name()), file.path(), line,
            static_cast<std::size_t>(it->position(2)) + 1,
            "manual ." + method + "() on mutex '" + receiver +
                "' leaks the lock on exception paths; hold it through "
                "std::lock_guard / std::unique_lock / std::scoped_lock"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_lock_discipline_rule() {
  return std::make_unique<LockDisciplineRule>();
}

}  // namespace rme::analyze
