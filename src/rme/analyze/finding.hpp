#pragma once
// rme::analyze — one diagnostic from one rule at one source location.

#include <cstddef>
#include <string>

namespace rme::analyze {

struct Finding {
  std::string rule;     ///< Rule name, e.g. "banned-globals".
  std::string file;     ///< Path as scanned (or the virtual path).
  std::size_t line = 0;    ///< 1-based.
  std::size_t column = 0;  ///< 1-based; 0 when the rule is line-granular.
  std::string message;  ///< What is wrong and what to do instead.
};

}  // namespace rme::analyze
