#pragma once
// rme::analyze — content-hash incremental cache.
//
// Analyzing a file is pure: (bytes, rule registry) fully determine its
// facts and findings.  The cache exploits that by storing, per
// repo-relative path, the FNV-1a hash of the bytes last analyzed plus
// the FileFacts and per-file findings they produced.  On the next run
// a file whose bytes hash the same is served from the cache — no lex,
// no rules — which turns warm `rme_analyze --cache=...` runs into a
// hash-and-compare pass.  Cross-TU rules always run (they are global),
// but they consume cached facts like fresh ones.
//
// Invalidation is wholesale on rule change: the file embeds
// rules_fingerprint(), and a mismatch discards everything.  Entries
// store repo-relative paths only, so a cache written by a relative
// invocation (scripts/ci.sh) is valid for an absolute one (ctest) and
// vice versa — the driver rehydrates as-scanned paths on lookup.
//
// The format is a versioned line-oriented text file; a corrupt or
// truncated cache loads as empty (analysis still succeeds, just cold).

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "rme/analyze/finding.hpp"
#include "rme/analyze/index.hpp"

namespace rme::analyze {

/// FNV-1a, 64-bit: the content hash for cache keys.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// One cached file: content hash, extracted facts, per-file findings.
/// `facts.path` and every finding's `file` are repo-relative.
struct CacheEntry {
  std::uint64_t hash = 0;
  FileFacts facts;
  std::vector<Finding> findings;
};

class AnalysisCache {
 public:
  /// Reads a cache file; a missing, corrupt, or fingerprint-mismatched
  /// file yields an empty cache (never an error — cold is correct).
  [[nodiscard]] static AnalysisCache load(const std::filesystem::path& file);

  /// The entry for `rel_path` when its stored hash equals `hash`;
  /// nullptr otherwise.
  [[nodiscard]] const CacheEntry* lookup(const std::string& rel_path,
                                         std::uint64_t hash) const;

  /// Inserts or replaces the entry for `rel_path`.
  void store(const std::string& rel_path, CacheEntry entry);

  /// Writes the cache atomically enough for a tool (temp-free, single
  /// stream); returns false on I/O failure.
  [[nodiscard]] bool save(const std::filesystem::path& file) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::map<std::string, CacheEntry> entries_;
};

}  // namespace rme::analyze
