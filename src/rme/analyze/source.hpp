#pragma once
// rme::analyze — source model for the project static analyzer.
//
// A SourceFile is a lexed view of one translation unit or header:
//
//   * raw lines     — the file exactly as written;
//   * code lines    — the same lines with comments and the contents of
//                     string/character literals masked to spaces (column
//                     positions are preserved), so rules match code and
//                     only code.  The lexer understands line comments,
//                     block comments (including multi-line), ordinary
//                     and raw string literals, character literals, and
//                     C++14 digit separators;
//   * suppressions  — parsed allow directives: the `rme-lint:` marker
//                     followed by `allow(<rule>: <reason>)`.  A trailing
//                     directive suppresses its own line; a directive on
//                     a comment-only line suppresses the next line.
//                     `<rule>` is a single rule name, a comma-separated
//                     list, or `*`; the reason is mandatory (the
//                     suppression-hygiene rule flags directives without
//                     one, and malformed directives suppress nothing).
//
// Rules never re-tokenize: they see masked code through code_line(),
// structured tokens and include directives through tokens() (the shared
// token-stream layer, tokens.hpp), and query suppressed() per finding.

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "rme/analyze/tokens.hpp"

namespace rme::analyze {

enum class FileKind { kHeader, kSource, kOther };

/// One parsed allow directive.
struct Suppression {
  std::size_t line = 0;            ///< 1-based line of the directive.
  bool whole_line = false;         ///< Comment-only line: covers line+1.
  bool malformed = false;          ///< Missing `<rule>:` prefix or reason.
  std::vector<std::string> rules;  ///< Rule names; "*" matches any rule.
  std::string reason;              ///< Free text after the rule list.
  std::string raw;                 ///< Inner text as written, for messages.
};

class SourceFile {
 public:
  /// Loads and lexes a file from disk.  Throws std::runtime_error when
  /// the file cannot be read.
  [[nodiscard]] static SourceFile load(const std::filesystem::path& path);

  /// Lexes in-memory content under a virtual path.  Path-derived
  /// properties (kind, library membership) follow the virtual path, so
  /// tests can model "a public header" without touching src/.
  [[nodiscard]] static SourceFile from_string(std::string path,
                                              std::string content);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] FileKind kind() const noexcept { return kind_; }

  /// True when the file lives under src/rme/ — the library proper, as
  /// opposed to tools, benches, and tests.
  [[nodiscard]] bool in_library() const noexcept { return in_library_; }
  /// A header under src/rme/: the API surface the escape-hatch rules
  /// hold to a stricter standard than translation units.
  [[nodiscard]] bool public_header() const noexcept {
    return in_library_ && kind_ == FileKind::kHeader;
  }

  [[nodiscard]] std::size_t line_count() const noexcept {
    return raw_lines_.size();
  }
  /// 1-based; the line exactly as written.
  [[nodiscard]] const std::string& raw_line(std::size_t line) const;
  /// 1-based; comments and literal contents masked to spaces.
  [[nodiscard]] const std::string& code_line(std::size_t line) const;

  /// The shared token stream: identifiers/numbers/punctuation with
  /// line, column, and brace depth, plus parsed #include directives.
  [[nodiscard]] const TokenScan& tokens() const noexcept { return scan_; }

  [[nodiscard]] const std::vector<Suppression>& suppressions() const noexcept {
    return suppressions_;
  }
  /// True when a well-formed directive covers `rule` at `line`.
  [[nodiscard]] bool suppressed(std::string_view rule,
                                std::size_t line) const noexcept;

 private:
  std::string path_;
  FileKind kind_ = FileKind::kOther;
  bool in_library_ = false;
  std::vector<std::string> raw_lines_;
  std::vector<std::string> code_lines_;
  std::vector<Suppression> suppressions_;
  TokenScan scan_;
};

}  // namespace rme::analyze
