// format-in-hot-path (cross-TU): text formatting on the per-item
// paths.  std::to_string, ostringstream, and snprintf each cost
// hundreds of cycles plus (for the first two) heap traffic — per-item
// work that exists only to produce bytes nobody reads until the cold
// boundary.  The serve daemon's request loop is the motivating case:
// the response text must be assembled once, at the edge, not
// piecemeal inside the engine.
//
// Fired ops (kind "format"): std::to_string (only when
// std::-qualified — the project's own unqualified to_string overloads
// are enum-to-const-char* tables and cost nothing), ostringstream /
// stringstream construction, and snprintf / sprintf / vsnprintf
// calls.

#include <memory>
#include <string>
#include <vector>

#include "rme/analyze/callgraph.hpp"
#include "rme/analyze/rules.hpp"

namespace rme::analyze {
namespace {

class FormatInHotPathRule final : public ProjectRule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "format-in-hot-path";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "string formatting (std::to_string, stringstream, snprintf) "
           "reachable from a hot root; format at the boundary";
  }
  [[nodiscard]] std::string_view explain() const noexcept override {
    return "Formatting converts numbers to text at a cost of hundreds of "
           "cycles per value plus, for std::to_string and stringstreams, "
           "a heap allocation — per-item work that produces bytes nobody "
           "reads until the cold boundary, and locale-sensitive work at "
           "that.  On the serve hot path it competes directly with the "
           "model evaluation the request paid for.  This rule flags "
           "std::-qualified to_string (the project's own unqualified "
           "to_string overloads are constant-table lookups and stay "
           "quiet), ostringstream/stringstream construction, and "
           "snprintf-family calls inside definitions the call graph "
           "reaches from a hot root.  Safe replacements: format once at "
           "the reporting boundary after the join, precompute invariant "
           "text when inputs change (generation bumps, registry edits) "
           "instead of per request, or append into a caller-owned buffer "
           "reused across items.";
  }

  void check(const ProjectIndex& index,
             std::vector<Finding>& out) const override {
    for (const HotFunction& hf : compute_hot_set(index)) {
      const std::string rel = repo_relative(hf.file->path);
      for (const HotOp& op : hf.def->ops) {
        if (op.kind != "format" || op.suppressed) continue;
        out.push_back(Finding{
            std::string(name()), rel, op.line, op.column,
            "string formatting (" + op.detail + ") on the hot path via " +
                hf.trace + "; format at the reporting boundary or "
                "precompute the text when its inputs change"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<ProjectRule> make_format_in_hot_path_rule() {
  return std::make_unique<FormatInHotPathRule>();
}

}  // namespace rme::analyze
