#include "rme/analyze/source.hpp"

#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace rme::analyze {

namespace {

FileKind classify_extension(const std::string& path) {
  const auto dot = path.rfind('.');
  if (dot == std::string::npos) return FileKind::kOther;
  const std::string ext = path.substr(dot);
  if (ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".hxx") {
    return FileKind::kHeader;
  }
  if (ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".c") {
    return FileKind::kSource;
  }
  return FileKind::kOther;
}

bool path_in_library(const std::string& path) {
  return path.find("src/rme/") != std::string::npos ||
         path.find("src\\rme\\") != std::string::npos;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when the `"` at content[i] opens a raw string literal, i.e. is
/// preceded by R with an optional u8/u/U/L encoding prefix.
bool opens_raw_string(const std::string& s, std::size_t i) {
  if (i == 0 || s[i - 1] != 'R') return false;
  // The R must start the prefix token: before it sits a non-identifier
  // char or one of the encoding prefixes.
  if (i == 1) return true;
  const char before = s[i - 2];
  if (!is_ident_char(before)) return true;
  if (before == 'u' || before == 'U' || before == 'L') {
    return i == 2 || !is_ident_char(s[i - 3]);
  }
  if (before == '8' && i >= 3 && s[i - 3] == 'u') {
    return i == 3 || !is_ident_char(s[i - 4]);
  }
  return false;
}

/// Lexes `content` into a masked copy (comments and literal contents
/// replaced by spaces) and a comment-only copy (everything but comment
/// text replaced by spaces).  Newlines survive in both.
struct LexResult {
  std::string code;
  std::string comments;
};

LexResult lex(const std::string& content) {
  enum class St { kCode, kLine, kBlock, kString, kChar, kRaw };
  LexResult out;
  out.code.assign(content.size(), ' ');
  out.comments.assign(content.size(), ' ');
  for (std::size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') {
      out.code[i] = '\n';
      out.comments[i] = '\n';
    }
  }

  St st = St::kCode;
  std::string raw_delim;  // the )delim" closer for the active raw string
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          ++i;  // do not re-read the '*' as a closer
        } else if (c == '"' && opens_raw_string(content, i)) {
          st = St::kRaw;
          raw_delim = ")";
          for (std::size_t j = i + 1; j < content.size() && content[j] != '(';
               ++j) {
            raw_delim += content[j];
          }
          raw_delim += '"';
        } else if (c == '"') {
          st = St::kString;
        } else if (c == '\'' && i > 0 && i + 1 < content.size() &&
                   std::isalnum(static_cast<unsigned char>(content[i - 1])) &&
                   std::isalnum(static_cast<unsigned char>(next))) {
          // C++14 digit separator (1'000'000): not a character literal.
          out.code[i] = c;
        } else if (c == '\'') {
          st = St::kChar;
        } else if (c != '\n') {
          out.code[i] = c;
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else {
          out.comments[i] = c;
        }
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out.comments[i] = c;
        }
        break;
      case St::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          st = St::kCode;
        }
        break;
      case St::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        }
        break;
      case St::kRaw:
        if (c == ')' && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          st = St::kCode;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    const auto nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  // A trailing newline yields a phantom empty final line; drop it so
  // line_count() matches what an editor shows.
  if (!lines.empty() && lines.back().empty() && !text.empty() &&
      text.back() == '\n') {
    lines.pop_back();
  }
  return lines;
}

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

bool valid_rule_token(const std::string& token) {
  if (token == "*") return true;
  if (token.empty()) return false;
  for (const char c : token) {
    if (std::islower(static_cast<unsigned char>(c)) == 0 &&
        std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '-') {
      return false;
    }
  }
  return true;
}

Suppression parse_directive(std::size_t line, bool whole_line,
                            const std::string& inner) {
  Suppression s;
  s.line = line;
  s.whole_line = whole_line;
  s.raw = inner;
  const auto colon = inner.find(':');
  if (colon == std::string::npos) {
    s.malformed = true;  // legacy `allow(reason)` form: names no rule
    s.reason = trim(inner);
    return s;
  }
  std::vector<std::string> rules;
  std::stringstream list(inner.substr(0, colon));
  std::string token;
  while (std::getline(list, token, ',')) {
    const std::string t = trim(token);
    if (!valid_rule_token(t)) {
      s.malformed = true;
      s.reason = trim(inner);
      return s;
    }
    rules.push_back(t);
  }
  s.reason = trim(inner.substr(colon + 1));
  if (rules.empty() || s.reason.empty()) {
    s.malformed = true;
    return s;
  }
  s.rules = std::move(rules);
  return s;
}

}  // namespace

const std::string& SourceFile::raw_line(std::size_t line) const {
  return raw_lines_.at(line - 1);
}

const std::string& SourceFile::code_line(std::size_t line) const {
  return code_lines_.at(line - 1);
}

bool SourceFile::suppressed(std::string_view rule,
                            std::size_t line) const noexcept {
  for (const Suppression& s : suppressions_) {
    if (s.malformed) continue;
    const bool covers =
        s.line == line || (s.whole_line && s.line + 1 == line);
    if (!covers) continue;
    for (const std::string& r : s.rules) {
      if (r == "*" || r == rule) return true;
    }
  }
  return false;
}

SourceFile SourceFile::from_string(std::string path, std::string content) {
  SourceFile f;
  f.path_ = std::move(path);
  f.kind_ = classify_extension(f.path_);
  f.in_library_ = path_in_library(f.path_);

  const LexResult lexed = lex(content);
  f.raw_lines_ = split_lines(content);
  f.code_lines_ = split_lines(lexed.code);
  f.scan_ = scan_tokens(f.code_lines_, f.raw_lines_);
  const std::vector<std::string> comment_lines = split_lines(lexed.comments);

  static const std::regex kAllow(R"(rme-lint:\s*allow\(([^)]*)\))");
  for (std::size_t i = 0; i < comment_lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(comment_lines[i], m, kAllow)) continue;
    // Guard the masked-line lookup: a final line without a trailing
    // newline must still honor its directive even if the comment and
    // code views ever disagree about the phantom last line.
    const bool whole_line =
        i >= f.code_lines_.size() ||
        f.code_lines_[i].find_first_not_of(" \t") == std::string::npos;
    f.suppressions_.push_back(parse_directive(i + 1, whole_line, m[1].str()));
  }
  return f;
}

SourceFile SourceFile::load(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("rme_analyze: cannot open " + path.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_string(path.generic_string(), buf.str());
}

}  // namespace rme::analyze
