// suppression-hygiene: every allow directive must name the rule it
// silences and carry a written reason — the `rme-lint:` marker followed
// by `allow(<rule>[,<rule>...]: <reason>)`.  The pre-PR 4 form named no
// rule; it is rejected here and, being malformed, suppresses nothing.
// Unknown rule names are flagged so a typo cannot silently disarm a
// directive.

#include <string>

#include "rme/analyze/rules.hpp"

namespace rme::analyze {
namespace {

class SuppressionHygieneRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "suppression-hygiene";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "allow(...) directive missing its rule name, reason, or naming "
           "an unknown rule";
  }
  [[nodiscard]] std::string_view explain() const noexcept override {
    return "Suppressions are load-bearing exceptions to the lint "
           "contract, so they are held to their own grammar: "
           "`rme-lint: allow(<rule>: <reason>)` with a real rule name "
           "(or a comma-separated list, or *) and a non-empty reason.  A "
           "directive with no reason hides a finding without recording "
           "why it is safe, which is indistinguishable from hiding a bug; "
           "one naming an unknown rule suppresses nothing and usually "
           "means a typo is letting the real finding through unseen.  "
           "Safe replacement: name the exact rule, write the reason a "
           "future reader needs (`allow(lock-in-hot-path: queue mutex is "
           "per-batch, not per-item)`), and prefer fixing the finding "
           "over suppressing it when the fix is comparable effort.";
  }

  void check(const SourceFile& file,
             std::vector<Finding>& out) const override {
    for (const Suppression& s : file.suppressions()) {
      if (s.malformed) {
        out.push_back(Finding{
            std::string(name()), file.path(), s.line, 0,
            "malformed suppression 'allow(" + s.raw +
                ")'; write '// rme-lint: allow(<rule>: <reason>)' with "
                "both a rule name and a reason"});
        continue;
      }
      for (const std::string& r : s.rules) {
        // Project rules (layering, lock-order) are legal targets too.
        if (r != "*" && find_rule(r) == nullptr &&
            find_project_rule(r) == nullptr) {
          out.push_back(Finding{
              std::string(name()), file.path(), s.line, 0,
              "suppression names unknown rule '" + r +
                  "'; see rme_analyze --list-rules"});
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_suppression_hygiene_rule() {
  return std::make_unique<SuppressionHygieneRule>();
}

}  // namespace rme::analyze
