#include "rme/analyze/tokens.hpp"

#include <algorithm>
#include <cctype>
#include <regex>

namespace rme::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Two-char operators tokenized as one unit.  Only the ones rules
/// inspect structurally; every other punctuation char stands alone.
bool two_char_op(char a, char b) {
  return (a == ':' && b == ':') || (a == '-' && b == '>') ||
         (a == '<' && b == '<') || (a == '>' && b == '>');
}

}  // namespace

std::size_t TokenScan::first_token_on_line(std::size_t line) const {
  const auto it = std::lower_bound(
      tokens.begin(), tokens.end(), line,
      [](const Token& t, std::size_t l) { return t.line < l; });
  return static_cast<std::size_t>(it - tokens.begin());
}

bool TokenScan::line_has_ident(std::size_t line,
                               const std::string& ident) const {
  for (std::size_t i = first_token_on_line(line);
       i < tokens.size() && tokens[i].line == line; ++i) {
    if (tokens[i].kind == TokKind::kIdent && tokens[i].text == ident) {
      return true;
    }
  }
  return false;
}

TokenScan scan_tokens(const std::vector<std::string>& code_lines,
                      const std::vector<std::string>& raw_lines) {
  TokenScan scan;
  int depth = 0;

  // Matched against the *masked* line, so `// #include "x"` (masked to
  // spaces) never registers; the target is then read from the raw line
  // because masking blanks quoted paths (including the quotes, so the
  // skeleton must not require a delimiter).
  static const std::regex kIncludeSkeleton(R"(^\s*#\s*include\b)");
  static const std::regex kIncludeTarget(
      R"rx(^\s*#\s*include\s*(?:<([^>]*)>|"([^"]*)"))rx");

  for (std::size_t li = 0; li < code_lines.size(); ++li) {
    const std::string& code = code_lines[li];
    const std::size_t line = li + 1;

    if (std::regex_search(code, kIncludeSkeleton)) {
      std::smatch m;
      if (li < raw_lines.size() &&
          std::regex_search(raw_lines[li], m, kIncludeTarget)) {
        IncludeDirective inc;
        inc.angled = m[1].matched;
        inc.target = inc.angled ? m[1].str() : m[2].str();
        inc.line = line;
        inc.column = raw_lines[li].find('#') + 1;
        scan.includes.push_back(std::move(inc));
      }
      continue;  // Preprocessor lines carry no code tokens for rules.
    }

    for (std::size_t i = 0; i < code.size();) {
      const char c = code[i];
      if (c == ' ' || c == '\t') {
        ++i;
        continue;
      }
      Token t;
      t.line = line;
      t.column = i + 1;
      if (ident_start(c)) {
        std::size_t j = i + 1;
        while (j < code.size() && ident_char(code[j])) ++j;
        t.kind = TokKind::kIdent;
        t.text = code.substr(i, j - i);
        t.depth = depth;
        i = j;
      } else if (digit(c)) {
        // pp-number: digits, ident chars, '.', and masked-literal digit
        // separators all glue into one token.
        std::size_t j = i + 1;
        while (j < code.size() &&
               (ident_char(code[j]) || code[j] == '.' || code[j] == '\'')) {
          ++j;
        }
        t.kind = TokKind::kNumber;
        t.text = code.substr(i, j - i);
        t.depth = depth;
        i = j;
      } else {
        t.kind = TokKind::kPunct;
        if (i + 1 < code.size() && two_char_op(c, code[i + 1])) {
          t.text = code.substr(i, 2);
          i += 2;
        } else {
          t.text = std::string(1, c);
          i += 1;
        }
        if (t.text == "{") {
          ++depth;
          t.depth = depth;  // The depth this brace opens.
        } else if (t.text == "}") {
          t.depth = depth;  // The depth this brace closes.
          depth = std::max(0, depth - 1);
        } else {
          t.depth = depth;
        }
      }
      scan.tokens.push_back(std::move(t));
    }
  }
  return scan;
}

}  // namespace rme::analyze
