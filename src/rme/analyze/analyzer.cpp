#include "rme/analyze/analyzer.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "rme/analyze/baseline.hpp"
#include "rme/analyze/cache.hpp"
#include "rme/analyze/rules.hpp"
#include "rme/exec/pool.hpp"
#include "rme/obs/trace.hpp"

namespace rme::analyze {

namespace {

namespace fs = std::filesystem;

bool scannable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".hxx" ||
         ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".c";
}

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

std::vector<const Rule*> select_rules(
    const std::vector<std::string>& selectors) {
  if (selectors.empty()) return all_rules();
  std::vector<const Rule*> rules;
  for (const std::string& sel : selectors) {
    const Rule* r = find_rule(sel);
    if (r == nullptr) {
      throw std::invalid_argument("rme_analyze: unknown rule '" + sel +
                                  "' (see --list-rules)");
    }
    if (std::find(rules.begin(), rules.end(), r) == rules.end()) {
      rules.push_back(r);
    }
  }
  return rules;
}

std::vector<fs::path> collect_files(const std::vector<fs::path>& paths,
                                    std::vector<std::string>& errors) {
  std::vector<fs::path> files;
  for (const fs::path& root : paths) {
    if (!fs::exists(root)) {
      errors.push_back("no such path: " + root.string());
      continue;
    }
    if (fs::is_regular_file(root)) {
      files.push_back(root);
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file() && scannable_extension(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.generic_string() < b.generic_string();
            });
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<Finding> run_rules(const SourceFile& file,
                               const std::vector<const Rule*>& rules) {
  std::vector<Finding> raw;
  for (const Rule* rule : rules) {
    rule->check(file, raw);
  }
  std::vector<Finding> kept;
  for (Finding& f : raw) {
    if (!file.suppressed(f.rule, f.line)) {
      kept.push_back(std::move(f));
    }
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    if (a.column != b.column) return a.column < b.column;
    return a.rule < b.rule;
  });
  return kept;
}

Report analyze_paths(const std::vector<fs::path>& paths,
                     const std::vector<const Rule*>& rules) {
  Report report;
  for (const Rule* r : rules) {
    report.rules_run.emplace_back(r->name());
  }
  for (const fs::path& file : collect_files(paths, report.errors)) {
    try {
      const SourceFile source = SourceFile::load(file);
      ++report.files_scanned;
      std::vector<Finding> findings = run_rules(source, rules);
      report.findings.insert(report.findings.end(),
                             std::make_move_iterator(findings.begin()),
                             std::make_move_iterator(findings.end()));
    } catch (const std::exception& e) {
      report.errors.emplace_back(e.what());
    }
  }
  return report;
}

void write_text(std::ostream& os, const Report& report) {
  for (const Finding& f : report.findings) {
    os << f.file << ":" << f.line;
    if (f.column != 0) os << ":" << f.column;
    os << ": [" << f.rule << "] " << f.message << "\n";
  }
  for (const std::string& e : report.errors) {
    os << "rme_analyze: error: " << e << "\n";
  }
  if (report.findings.empty() && report.errors.empty()) {
    os << "rme_analyze: clean (" << report.files_scanned << " files, "
       << report.rules_run.size() << " rules)\n";
  } else {
    os << "rme_analyze: " << report.findings.size() << " finding(s) across "
       << report.files_scanned << " file(s), " << report.rules_run.size()
       << " rule(s)\n";
  }
}

void select_all_rules(const std::vector<std::string>& selectors,
                      std::vector<const Rule*>& rules,
                      std::vector<const ProjectRule*>& project_rules) {
  if (selectors.empty()) {
    rules = all_rules();
    project_rules = all_project_rules();
    return;
  }
  for (const std::string& sel : selectors) {
    if (const Rule* r = find_rule(sel); r != nullptr) {
      if (std::find(rules.begin(), rules.end(), r) == rules.end()) {
        rules.push_back(r);
      }
      continue;
    }
    if (const ProjectRule* r = find_project_rule(sel); r != nullptr) {
      if (std::find(project_rules.begin(), project_rules.end(), r) ==
          project_rules.end()) {
        project_rules.push_back(r);
      }
      continue;
    }
    throw std::invalid_argument("rme_analyze: unknown rule '" + sel +
                                "' (see --list-rules)");
  }
}

namespace {

/// The per-file result of one parallel-map slot.  Slots are merged in
/// index order, so the report is independent of worker scheduling.
struct FileSlot {
  bool ok = false;
  bool cache_hit = false;
  std::string error;
  std::string rel;           ///< Repo-relative path (cache/baseline key).
  std::uint64_t hash = 0;    ///< FNV-1a of the file bytes.
  FileFacts facts;           ///< facts.path is the as-scanned path.
  std::vector<Finding> findings;  ///< Per-file rules, as-scanned paths.
};

/// Runs the per-file rules with per-rule latency instrumentation and
/// drops suppressed findings.  Unlike run_rules, keeps the per-rule
/// timing visible to --metrics.
std::vector<Finding> run_rules_timed(const SourceFile& file,
                                     const std::vector<const Rule*>& rules,
                                     rme::obs::Tracer* tracer) {
  std::vector<Finding> raw;
  for (const Rule* rule : rules) {
    const std::int64_t t0 = tracer != nullptr ? tracer->now_us() : 0;
    rule->check(file, raw);
    if (tracer != nullptr) {
      tracer->record_latency("analyze.rule." + std::string(rule->name()),
                             tracer->now_us() - t0);
    }
  }
  std::vector<Finding> kept;
  for (Finding& f : raw) {
    if (!file.suppressed(f.rule, f.line)) {
      kept.push_back(std::move(f));
    }
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    if (a.column != b.column) return a.column < b.column;
    return a.rule < b.rule;
  });
  return kept;
}

std::string read_file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool finding_before(const Finding& a, const Finding& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.column != b.column) return a.column < b.column;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.message < b.message;
}

}  // namespace

ProjectReport analyze_project(const std::vector<fs::path>& paths,
                              const ProjectOptions& options) {
  ProjectReport report;
  std::vector<const Rule*> rules;
  std::vector<const ProjectRule*> project_rules;
  select_all_rules(options.selectors, rules, project_rules);
  for (const Rule* r : rules) report.rules_run.emplace_back(r->name());
  for (const ProjectRule* r : project_rules) {
    report.rules_run.emplace_back(r->name());
  }

  const std::vector<fs::path> files = collect_files(paths, report.errors);
  const AnalysisCache cache = options.cache_path.empty()
                                  ? AnalysisCache{}
                                  : AnalysisCache::load(options.cache_path);

  // Phase 1 (parallel): hash, lex, per-file rules, fact extraction.
  // Each slot is a pure function of its file's bytes, so the map is
  // byte-identical at any jobs value; the cache is read-only here.
  rme::obs::Tracer* const tracer = options.tracer;
  const auto analyze_one = [&](std::size_t i) -> FileSlot {
    FileSlot slot;
    const std::string scanned = files[i].generic_string();
    try {
      const std::string bytes = read_file_bytes(files[i]);
      slot.rel = repo_relative(scanned);
      slot.hash = fnv1a64(bytes);
      if (const CacheEntry* hit = cache.lookup(slot.rel, slot.hash)) {
        slot.facts = hit->facts;
        slot.facts.path = scanned;
        slot.findings = hit->findings;
        for (Finding& f : slot.findings) f.file = scanned;
        slot.cache_hit = true;
        slot.ok = true;
        return slot;
      }
      const obs::Span span(tracer, scanned, "analyze.file");
      const SourceFile source = SourceFile::from_string(scanned, bytes);
      slot.findings = run_rules_timed(source, rules, tracer);
      slot.facts = extract_facts(source);
      slot.ok = true;
    } catch (const std::exception& e) {
      slot.error = e.what();
    }
    return slot;
  };
  std::vector<FileSlot> slots = rme::exec::parallel_map(
      files.size(), analyze_one, options.jobs, tracer);

  // Phase 2 (sequential, index order): merge slots, refresh the cache.
  AnalysisCache updated;
  ProjectIndex index;
  for (FileSlot& slot : slots) {
    if (!slot.ok) {
      report.errors.push_back(std::move(slot.error));
      continue;
    }
    ++report.files_scanned;
    report.tokens_scanned += slot.facts.token_count;
    if (slot.cache_hit) ++report.cache_hits;
    if (!options.cache_path.empty()) {
      CacheEntry entry;
      entry.hash = slot.hash;
      entry.facts = slot.facts;
      entry.facts.path = slot.rel;
      entry.findings = slot.findings;
      for (Finding& f : entry.findings) f.file = slot.rel;
      updated.store(slot.rel, std::move(entry));
    }
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(slot.findings.begin()),
                           std::make_move_iterator(slot.findings.end()));
    index.files.push_back(std::move(slot.facts));
  }
  std::sort(index.files.begin(), index.files.end(),
            [](const FileFacts& a, const FileFacts& b) {
              return a.path < b.path;
            });

  // Phase 3 (sequential): project rules over the assembled index.
  // Their findings cite repo-relative paths (the graph's identity);
  // remap to as-scanned so the whole report is uniform.
  std::map<std::string, std::string> scanned_of;
  for (const FileFacts& f : index.files) {
    scanned_of.emplace(repo_relative(f.path), f.path);
  }
  for (const ProjectRule* rule : project_rules) {
    std::vector<Finding> project_findings;
    const std::int64_t t0 = tracer != nullptr ? tracer->now_us() : 0;
    rule->check(index, project_findings);
    if (tracer != nullptr) {
      tracer->record_latency("analyze.rule." + std::string(rule->name()),
                             tracer->now_us() - t0);
    }
    for (Finding& f : project_findings) {
      const auto it = scanned_of.find(f.file);
      if (it != scanned_of.end()) f.file = it->second;
      report.findings.push_back(std::move(f));
    }
  }
  std::sort(report.findings.begin(), report.findings.end(), finding_before);

  if (!options.baseline_path.empty()) {
    std::string baseline_error;
    const Baseline baseline =
        Baseline::load(options.baseline_path, &baseline_error);
    if (!baseline_error.empty()) report.errors.push_back(baseline_error);
    report.findings =
        baseline.filter(std::move(report.findings), &report.baselined);
  }

  report.graph = build_include_graph(index);

  if (!options.cache_path.empty() && !updated.save(options.cache_path)) {
    report.errors.push_back("cannot write cache file " +
                            options.cache_path.string());
  }
  if (tracer != nullptr) {
    tracer->add_counter("analyze.files",
                        static_cast<std::int64_t>(report.files_scanned));
    tracer->add_counter("analyze.tokens",
                        static_cast<std::int64_t>(report.tokens_scanned));
    tracer->add_counter("analyze.findings",
                        static_cast<std::int64_t>(report.findings.size()));
    tracer->add_counter("analyze.cache_hits",
                        static_cast<std::int64_t>(report.cache_hits));
  }
  return report;
}

void write_text(std::ostream& os, const ProjectReport& report) {
  for (const Finding& f : report.findings) {
    os << f.file << ":" << f.line;
    if (f.column != 0) os << ":" << f.column;
    os << ": [" << f.rule << "] " << f.message << "\n";
  }
  for (const std::string& e : report.errors) {
    os << "rme_analyze: error: " << e << "\n";
  }
  os << "rme_analyze: ";
  if (report.findings.empty() && report.errors.empty()) {
    os << "clean";
  } else {
    os << report.findings.size() << " finding(s)";
  }
  os << " (" << report.files_scanned << " files, " << report.rules_run.size()
     << " rules, " << report.cache_hits << " cache hits";
  if (report.baselined != 0) os << ", " << report.baselined << " baselined";
  os << ")\n";
}

void write_json(std::ostream& os, const ProjectReport& report) {
  os << "{\"files_scanned\":" << report.files_scanned
     << ",\"tokens_scanned\":" << report.tokens_scanned
     << ",\"cache_hits\":" << report.cache_hits
     << ",\"baselined\":" << report.baselined << ",\"rules\":[";
  for (std::size_t i = 0; i < report.rules_run.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"";
    json_escape(os, report.rules_run[i]);
    os << "\"";
  }
  os << "],\"findings\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i != 0) os << ",";
    os << "{\"rule\":\"";
    json_escape(os, f.rule);
    os << "\",\"file\":\"";
    json_escape(os, f.file);
    os << "\",\"line\":" << f.line << ",\"column\":" << f.column
       << ",\"message\":\"";
    json_escape(os, f.message);
    os << "\"}";
  }
  os << "],\"errors\":[";
  for (std::size_t i = 0; i < report.errors.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"";
    json_escape(os, report.errors[i]);
    os << "\"";
  }
  os << "]}\n";
}

void write_sarif(std::ostream& os, const ProjectReport& report) {
  // SARIF 2.1.0, one run.  Columns: SARIF wants 1-based startColumn and
  // forbids 0 — line-granular findings omit the column property.
  os << "{\"version\":\"2.1.0\",\"$schema\":\"https://json.schemastore.org/"
        "sarif-2.1.0.json\",\"runs\":[{\"tool\":{\"driver\":"
        "{\"name\":\"rme_analyze\",\"informationUri\":"
        "\"docs/ANALYSIS.md\",\"rules\":[";
  bool first = true;
  for (const std::string& name : report.rules_run) {
    if (!first) os << ",";
    first = false;
    os << "{\"id\":\"";
    json_escape(os, name);
    os << "\"";
    std::string_view desc;
    if (const Rule* r = find_rule(name); r != nullptr) {
      desc = r->description();
    } else if (const ProjectRule* p = find_project_rule(name); p != nullptr) {
      desc = p->description();
    }
    if (!desc.empty()) {
      os << ",\"shortDescription\":{\"text\":\"";
      json_escape(os, std::string(desc));
      os << "\"}";
    }
    os << "}";
  }
  os << "]}},\"results\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i != 0) os << ",";
    os << "{\"ruleId\":\"";
    json_escape(os, f.rule);
    os << "\",\"level\":\"warning\",\"message\":{\"text\":\"";
    json_escape(os, f.message);
    os << "\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
          "{\"uri\":\"";
    json_escape(os, repo_relative(f.file));
    os << "\"},\"region\":{\"startLine\":" << f.line;
    if (f.column != 0) os << ",\"startColumn\":" << f.column;
    os << "}}}]}";
  }
  os << "]}]}\n";
}

void write_json(std::ostream& os, const Report& report) {
  os << "{\"files_scanned\":" << report.files_scanned << ",\"rules\":[";
  for (std::size_t i = 0; i < report.rules_run.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"";
    json_escape(os, report.rules_run[i]);
    os << "\"";
  }
  os << "],\"findings\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i != 0) os << ",";
    os << "{\"rule\":\"";
    json_escape(os, f.rule);
    os << "\",\"file\":\"";
    json_escape(os, f.file);
    os << "\",\"line\":" << f.line << ",\"column\":" << f.column
       << ",\"message\":\"";
    json_escape(os, f.message);
    os << "\"}";
  }
  os << "],\"errors\":[";
  for (std::size_t i = 0; i < report.errors.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"";
    json_escape(os, report.errors[i]);
    os << "\"";
  }
  os << "]}\n";
}

}  // namespace rme::analyze
