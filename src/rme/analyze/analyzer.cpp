#include "rme/analyze/analyzer.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "rme/analyze/rules.hpp"

namespace rme::analyze {

namespace {

namespace fs = std::filesystem;

bool scannable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".hxx" ||
         ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".c";
}

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

std::vector<const Rule*> select_rules(
    const std::vector<std::string>& selectors) {
  if (selectors.empty()) return all_rules();
  std::vector<const Rule*> rules;
  for (const std::string& sel : selectors) {
    const Rule* r = find_rule(sel);
    if (r == nullptr) {
      throw std::invalid_argument("rme_analyze: unknown rule '" + sel +
                                  "' (see --list-rules)");
    }
    if (std::find(rules.begin(), rules.end(), r) == rules.end()) {
      rules.push_back(r);
    }
  }
  return rules;
}

std::vector<fs::path> collect_files(const std::vector<fs::path>& paths,
                                    std::vector<std::string>& errors) {
  std::vector<fs::path> files;
  for (const fs::path& root : paths) {
    if (!fs::exists(root)) {
      errors.push_back("no such path: " + root.string());
      continue;
    }
    if (fs::is_regular_file(root)) {
      files.push_back(root);
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file() && scannable_extension(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.generic_string() < b.generic_string();
            });
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<Finding> run_rules(const SourceFile& file,
                               const std::vector<const Rule*>& rules) {
  std::vector<Finding> raw;
  for (const Rule* rule : rules) {
    rule->check(file, raw);
  }
  std::vector<Finding> kept;
  for (Finding& f : raw) {
    if (!file.suppressed(f.rule, f.line)) {
      kept.push_back(std::move(f));
    }
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    if (a.column != b.column) return a.column < b.column;
    return a.rule < b.rule;
  });
  return kept;
}

Report analyze_paths(const std::vector<fs::path>& paths,
                     const std::vector<const Rule*>& rules) {
  Report report;
  for (const Rule* r : rules) {
    report.rules_run.emplace_back(r->name());
  }
  for (const fs::path& file : collect_files(paths, report.errors)) {
    try {
      const SourceFile source = SourceFile::load(file);
      ++report.files_scanned;
      std::vector<Finding> findings = run_rules(source, rules);
      report.findings.insert(report.findings.end(),
                             std::make_move_iterator(findings.begin()),
                             std::make_move_iterator(findings.end()));
    } catch (const std::exception& e) {
      report.errors.emplace_back(e.what());
    }
  }
  return report;
}

void write_text(std::ostream& os, const Report& report) {
  for (const Finding& f : report.findings) {
    os << f.file << ":" << f.line;
    if (f.column != 0) os << ":" << f.column;
    os << ": [" << f.rule << "] " << f.message << "\n";
  }
  for (const std::string& e : report.errors) {
    os << "rme_analyze: error: " << e << "\n";
  }
  if (report.findings.empty() && report.errors.empty()) {
    os << "rme_analyze: clean (" << report.files_scanned << " files, "
       << report.rules_run.size() << " rules)\n";
  } else {
    os << "rme_analyze: " << report.findings.size() << " finding(s) across "
       << report.files_scanned << " file(s), " << report.rules_run.size()
       << " rule(s)\n";
  }
}

void write_json(std::ostream& os, const Report& report) {
  os << "{\"files_scanned\":" << report.files_scanned << ",\"rules\":[";
  for (std::size_t i = 0; i < report.rules_run.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"";
    json_escape(os, report.rules_run[i]);
    os << "\"";
  }
  os << "],\"findings\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i != 0) os << ",";
    os << "{\"rule\":\"";
    json_escape(os, f.rule);
    os << "\",\"file\":\"";
    json_escape(os, f.file);
    os << "\",\"line\":" << f.line << ",\"column\":" << f.column
       << ",\"message\":\"";
    json_escape(os, f.message);
    os << "\"}";
  }
  os << "],\"errors\":[";
  for (std::size_t i = 0; i < report.errors.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"";
    json_escape(os, report.errors[i]);
    os << "\"";
  }
  os << "]}\n";
}

}  // namespace rme::analyze
