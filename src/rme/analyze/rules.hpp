#pragma once
// rme::analyze — the rule registry.
//
// Rules live one-per-translation-unit under src/rme/analyze/; this
// header names their factories and the registry that owns one instance
// of each.  Registry order is presentation order in --list-rules and in
// reports, so keep it stable.

#include <memory>
#include <string_view>
#include <vector>

#include "rme/analyze/rule.hpp"

namespace rme::analyze {

[[nodiscard]] std::unique_ptr<Rule> make_units_suffix_rule();
[[nodiscard]] std::unique_ptr<Rule> make_banned_globals_rule();
[[nodiscard]] std::unique_ptr<Rule> make_determinism_rule();
[[nodiscard]] std::unique_ptr<Rule> make_value_escape_rule();
[[nodiscard]] std::unique_ptr<Rule> make_lock_discipline_rule();
[[nodiscard]] std::unique_ptr<Rule> make_unchecked_io_rule();
[[nodiscard]] std::unique_ptr<Rule> make_suppression_hygiene_rule();

/// All registered rules, constructed once, in registry order.
[[nodiscard]] const std::vector<const Rule*>& all_rules();

/// Looks up a rule by name; nullptr when unknown.
[[nodiscard]] const Rule* find_rule(std::string_view name);

}  // namespace rme::analyze
