#pragma once
// rme::analyze — the rule registry.
//
// Rules live one-per-translation-unit under src/rme/analyze/; this
// header names their factories and the registries that own one
// instance of each.  There are two kinds: per-file Rules (rule.hpp)
// and whole-project ProjectRules (index.hpp).  Registry order is
// presentation order in --list-rules and in reports, so keep it
// stable.

#include <memory>
#include <string_view>
#include <vector>

#include "rme/analyze/index.hpp"
#include "rme/analyze/rule.hpp"

namespace rme::analyze {

[[nodiscard]] std::unique_ptr<Rule> make_units_suffix_rule();
[[nodiscard]] std::unique_ptr<Rule> make_banned_globals_rule();
[[nodiscard]] std::unique_ptr<Rule> make_determinism_rule();
[[nodiscard]] std::unique_ptr<Rule> make_value_escape_rule();
[[nodiscard]] std::unique_ptr<Rule> make_lock_discipline_rule();
[[nodiscard]] std::unique_ptr<Rule> make_unchecked_io_rule();
[[nodiscard]] std::unique_ptr<Rule> make_suppression_hygiene_rule();

[[nodiscard]] std::unique_ptr<ProjectRule> make_layering_rule();
[[nodiscard]] std::unique_ptr<ProjectRule> make_lock_order_rule();
[[nodiscard]] std::unique_ptr<ProjectRule> make_alloc_in_hot_path_rule();
[[nodiscard]] std::unique_ptr<ProjectRule> make_lock_in_hot_path_rule();
[[nodiscard]] std::unique_ptr<ProjectRule> make_blocking_in_hot_path_rule();
[[nodiscard]] std::unique_ptr<ProjectRule> make_format_in_hot_path_rule();
[[nodiscard]] std::unique_ptr<ProjectRule> make_wire_errors_rule();

/// All registered per-file rules, constructed once, in registry order.
[[nodiscard]] const std::vector<const Rule*>& all_rules();

/// All registered project rules, constructed once, in registry order.
[[nodiscard]] const std::vector<const ProjectRule*>& all_project_rules();

/// Looks up a per-file rule by name; nullptr when unknown.
[[nodiscard]] const Rule* find_rule(std::string_view name);

/// Looks up a project rule by name; nullptr when unknown.
[[nodiscard]] const ProjectRule* find_project_rule(std::string_view name);

/// A stable fingerprint of the full rule registry (names of every
/// per-file and project rule).  The incremental cache embeds it so a
/// rule change invalidates cached facts and findings wholesale.
[[nodiscard]] std::string_view rules_fingerprint();

}  // namespace rme::analyze
