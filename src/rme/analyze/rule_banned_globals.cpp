// banned-globals: calls into thread-unsafe / global-state libc.  This
// is exactly the PR 3 bug class — glibc's lgamma writes the global
// `signgam`, which TSan caught racing under the rme::exec pool — made
// statically detectable.  Each banned function names its safe
// replacement in the finding message.

#include <array>
#include <regex>
#include <string>

#include "rme/analyze/rule.hpp"

namespace rme::analyze {
namespace {

struct Banned {
  const char* fn;
  const char* replacement;
};

// Longest-first where one name is a prefix of another (srand / rand)
// so the alternation cannot stop early.
constexpr std::array<Banned, 9> kBanned{{
    {"lgamma", "lgamma_r (writes the global signgam; races under the "
               "rme::exec pool — the PR 3 TSan bug)"},
    {"strtok", "strtok_r (static internal state)"},
    {"srand", "an RNG seeded via rme::exec::derive_seed (global PRNG state)"},
    {"rand", "rme::sim::NoiseModel or a <random> engine seeded via "
             "rme::exec::derive_seed (global PRNG state)"},
    {"localtime", "localtime_r (static struct tm)"},
    {"gmtime", "gmtime_r (static struct tm)"},
    {"asctime", "strftime into a caller-owned buffer (static buffer)"},
    {"strerror", "strerror_r (static buffer)"},
    {"setenv", "explicit configuration plumbing (environ mutation races "
               "concurrent getenv)"},
}};

class BannedGlobalsRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "banned-globals";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "thread-unsafe/global-state libc call (lgamma, strtok, rand, "
           "localtime, ...); use the _r/owned-state replacement";
  }

  void check(const SourceFile& file,
             std::vector<Finding>& out) const override {
    // A call: the bare name (optionally std:: / :: qualified) followed
    // by '('.  The leading class rejects identifier continuations
    // (my_rand) and foreign qualification (other::rand); the suffix is
    // protected because `lgamma_r(` leaves no '(' right after `lgamma`.
    static const std::regex kCall(
        R"((^|[^A-Za-z0-9_:])((?:std::|::)?)"
        R"((lgamma|strtok|srand|rand|localtime|gmtime|asctime|strerror|setenv))\s*\()");
    for (std::size_t line = 1; line <= file.line_count(); ++line) {
      const std::string& code = file.code_line(line);
      const auto begin = std::sregex_iterator(code.begin(), code.end(), kCall);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string fn = (*it)[3].str();
        const char* replacement = "";
        for (const Banned& b : kBanned) {
          if (fn == b.fn) {
            replacement = b.replacement;
            break;
          }
        }
        out.push_back(Finding{
            std::string(name()), file.path(), line,
            static_cast<std::size_t>(it->position(2)) + 1,
            "'" + fn + "' relies on process-global state and is not "
                "thread-safe; use " + replacement});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_banned_globals_rule() {
  return std::make_unique<BannedGlobalsRule>();
}

}  // namespace rme::analyze
