// banned-globals: calls into thread-unsafe / global-state libc.  This
// is exactly the PR 3 bug class — glibc's lgamma writes the global
// `signgam`, which TSan caught racing under the rme::exec pool — made
// statically detectable.  Each banned function names its safe
// replacement in the finding message.
//
// Token-stream port: a call is a banned identifier token directly
// followed by `(`, optionally qualified `std::` / `::`.  Foreign
// qualification (`other::rand`) does not flag, and `lgamma_r` is a
// different identifier token altogether — no suffix games needed.

#include <array>
#include <string>

#include "rme/analyze/rule.hpp"

namespace rme::analyze {
namespace {

struct Banned {
  const char* fn;
  const char* replacement;
};

constexpr std::array<Banned, 9> kBanned{{
    {"lgamma", "lgamma_r (writes the global signgam; races under the "
               "rme::exec pool — the PR 3 TSan bug)"},
    {"strtok", "strtok_r (static internal state)"},
    {"srand", "an RNG seeded via rme::exec::derive_seed (global PRNG state)"},
    {"rand", "rme::sim::NoiseModel or a <random> engine seeded via "
             "rme::exec::derive_seed (global PRNG state)"},
    {"localtime", "localtime_r (static struct tm)"},
    {"gmtime", "gmtime_r (static struct tm)"},
    {"asctime", "strftime into a caller-owned buffer (static buffer)"},
    {"strerror", "strerror_r (static buffer)"},
    {"setenv", "explicit configuration plumbing (environ mutation races "
               "concurrent getenv)"},
}};

const char* banned_replacement(const std::string& ident) {
  for (const Banned& b : kBanned) {
    if (ident == b.fn) return b.replacement;
  }
  return nullptr;
}

class BannedGlobalsRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "banned-globals";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "thread-unsafe/global-state libc call (lgamma, strtok, rand, "
           "localtime, ...); use the _r/owned-state replacement";
  }
  [[nodiscard]] std::string_view explain() const noexcept override {
    return "These libc functions communicate through hidden global state "
           "— strtok's save pointer, rand's seed, lgamma's signgam, "
           "localtime's static tm — so two threads calling them race even "
           "when every visible argument is thread-local, and results can "
           "change with call interleaving, which breaks this project's "
           "any-jobs-value determinism contract.  Safe replacements: the "
           "_r variants (strtok_r, localtime_r, lgamma_r) that take the "
           "state as an argument, an explicitly seeded <random> engine "
           "owned by the caller instead of rand, and std::chrono in place "
           "of time-formatting statics.";
  }

  void check(const SourceFile& file,
             std::vector<Finding>& out) const override {
    const std::vector<Token>& toks = file.tokens().tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      const char* replacement = banned_replacement(t.text);
      if (replacement == nullptr) continue;
      if (i + 1 >= toks.size() || toks[i + 1].text != "(" ||
          toks[i + 1].line != t.line) {
        continue;  // Not a call: lgamma_r is its own token, `rand;` no call.
      }
      // Qualification: bare, `::name`, and `std::name` flag (column at
      // the qualifier); `other::name` is a different function.
      std::size_t column = t.column;
      if (i >= 1 && toks[i - 1].text == "::") {
        if (i >= 2 && toks[i - 2].kind == TokKind::kIdent) {
          if (toks[i - 2].text != "std") continue;
          column = toks[i - 2].column;
        } else {
          column = toks[i - 1].column;
        }
      }
      out.push_back(Finding{
          std::string(name()), file.path(), t.line, column,
          "'" + t.text + "' relies on process-global state and is not "
              "thread-safe; use " + replacement});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_banned_globals_rule() {
  return std::make_unique<BannedGlobalsRule>();
}

}  // namespace rme::analyze
