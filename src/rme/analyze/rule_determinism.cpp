// determinism: the exec-pool contract says every result is a pure
// function of (inputs, base seed, task index).  Three things break that
// statically-visibly:
//
//   1. std::random_device — nondeterministic entropy, anywhere;
//   2. raw standard RNG engine construction (std::mt19937{...} et al.)
//      not seeded through rme::exec::derive_seed — such engines create
//      ad-hoc streams whose draws depend on call order, the latent bug
//      class PR 3 removed from fit::bootstrap;
//   3. wall-clock reads (std::chrono::system_clock, ::time(),
//      gettimeofday) in result-producing library code under src/rme/ —
//      timestamps there must come from the simulated trace.
//      steady_clock stays legal: ubench timing is measurement, not a
//      model input.
//
// Engine constructions inside src/rme/exec/ are exempt: that module
// *is* the derive_seed path.

#include <regex>
#include <string>

#include "rme/analyze/rule.hpp"

namespace rme::analyze {
namespace {

bool in_exec_module(const std::string& path) {
  return path.find("src/rme/exec/") != std::string::npos;
}

class DeterminismRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "determinism";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "nondeterministic seed/clock source (random_device, raw engine "
           "construction, wall clock in src/rme/)";
  }

  void check(const SourceFile& file,
             std::vector<Finding>& out) const override {
    static const std::regex kDevice(
        R"((^|[^A-Za-z0-9_])((?:std::)?random_device)\b)");
    static const std::regex kEngine(
        R"((^|[^A-Za-z0-9_])((?:std::)?)"
        R"((mt19937_64|mt19937|minstd_rand0|minstd_rand|ranlux24_base)"
        R"(|ranlux48_base|ranlux24|ranlux48|knuth_b|default_random_engine))\b)");
    static const std::regex kWallClock(
        R"((^|[^A-Za-z0-9_])((?:std::chrono::)?system_clock)\b)");
    static const std::regex kWallCall(
        R"((^|[^A-Za-z0-9_.>])((?:std::|::)?(time|gettimeofday|ftime))\s*\()");

    const bool exec_exempt = in_exec_module(file.path());
    for (std::size_t line = 1; line <= file.line_count(); ++line) {
      const std::string& code = file.code_line(line);

      for (auto it = std::sregex_iterator(code.begin(), code.end(), kDevice);
           it != std::sregex_iterator(); ++it) {
        out.push_back(Finding{
            std::string(name()), file.path(), line,
            static_cast<std::size_t>(it->position(2)) + 1,
            "std::random_device is nondeterministic; seed from the sweep's "
            "base seed via rme::exec::derive_seed(base, task_index)"});
      }

      if (!exec_exempt && code.find("derive_seed") == std::string::npos) {
        for (auto it =
                 std::sregex_iterator(code.begin(), code.end(), kEngine);
             it != std::sregex_iterator(); ++it) {
          const std::string engine = (*it)[3].str();
          out.push_back(Finding{
              std::string(name()), file.path(), line,
              static_cast<std::size_t>(it->position(2)) + 1,
              "raw '" + engine +
                  "' construction creates an ad-hoc RNG stream; seed it "
                  "with rme::exec::derive_seed(base, task_index) so "
                  "parallel sweeps stay order-independent"});
        }
      }

      if (!file.in_library()) continue;
      for (auto it =
               std::sregex_iterator(code.begin(), code.end(), kWallClock);
           it != std::sregex_iterator(); ++it) {
        out.push_back(Finding{
            std::string(name()), file.path(), line,
            static_cast<std::size_t>(it->position(2)) + 1,
            "wall clock in library code makes results time-dependent; "
            "derive timestamps from the simulated trace (steady_clock is "
            "fine for host measurement)"});
      }
      for (auto it =
               std::sregex_iterator(code.begin(), code.end(), kWallCall);
           it != std::sregex_iterator(); ++it) {
        const std::string fn = (*it)[3].str();
        out.push_back(Finding{
            std::string(name()), file.path(), line,
            static_cast<std::size_t>(it->position(2)) + 1,
            "'" + fn +
                "' reads the wall clock in library code; derive timestamps "
                "from the simulated trace"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_determinism_rule() {
  return std::make_unique<DeterminismRule>();
}

}  // namespace rme::analyze
