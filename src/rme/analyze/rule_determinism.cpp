// determinism: the exec-pool contract says every result is a pure
// function of (inputs, base seed, task index).  Three things break that
// statically-visibly:
//
//   1. std::random_device — nondeterministic entropy, anywhere;
//   2. raw standard RNG engine construction (std::mt19937{...} et al.)
//      not seeded through rme::exec::derive_seed — such engines create
//      ad-hoc streams whose draws depend on call order, the latent bug
//      class PR 3 removed from fit::bootstrap;
//   3. wall-clock reads (std::chrono::system_clock, ::time(),
//      gettimeofday) in result-producing library code under src/rme/ —
//      timestamps there must come from the simulated trace.
//      steady_clock stays legal: ubench timing is measurement, not a
//      model input.
//
// Engine constructions inside src/rme/exec/ are exempt: that module
// *is* the derive_seed path.  Token-stream port: matches identifier
// tokens (so strings/comments are structurally invisible) and treats a
// `derive_seed` identifier on the same line as proof of proper seeding.

#include <array>
#include <string>
#include <string_view>

#include "rme/analyze/rule.hpp"

namespace rme::analyze {
namespace {

bool in_exec_module(const std::string& path) {
  return path.find("src/rme/exec/") != std::string::npos;
}

constexpr std::array<std::string_view, 10> kEngines{
    "mt19937_64",    "mt19937",  "minstd_rand0", "minstd_rand",
    "ranlux24_base", "ranlux48_base", "ranlux24", "ranlux48",
    "knuth_b",       "default_random_engine"};

bool is_engine(const std::string& ident) {
  for (const std::string_view e : kEngines) {
    if (ident == e) return true;
  }
  return false;
}

bool is_wall_call(const std::string& ident) {
  return ident == "time" || ident == "gettimeofday" || ident == "ftime";
}

/// Column of the `std::` qualifier when tokens i-2,i-1 are `std` `::`,
/// else the identifier's own column.
std::size_t qualified_column(const std::vector<Token>& toks, std::size_t i) {
  if (i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "std" &&
      toks[i - 2].line == toks[i].line) {
    return toks[i - 2].column;
  }
  return toks[i].column;
}

class DeterminismRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "determinism";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "nondeterministic seed/clock source (random_device, raw engine "
           "construction, wall clock in src/rme/)";
  }
  [[nodiscard]] std::string_view explain() const noexcept override {
    return "The library's contract is that every model result is a pure "
           "function of its inputs: same machine description, same "
           "kernel, same seed, same answer — at any --jobs value, on any "
           "run.  std::random_device, default-constructed engines, and "
           "wall-clock reads each smuggle in an input nobody recorded, "
           "which breaks byte-identical artifact replay, the golden-file "
           "tests, and bisectability of numeric regressions.  Safe "
           "replacements: accept a std::uint64_t seed parameter and "
           "construct the engine from it (the bootstrap/session code "
           "shows the idiom), derive per-worker seeds deterministically "
           "from the root seed, and take timestamps only at the "
           "observability boundary (rme::obs), never inside a model "
           "computation.";
  }

  void check(const SourceFile& file,
             std::vector<Finding>& out) const override {
    const bool exec_exempt = in_exec_module(file.path());
    const TokenScan& scan = file.tokens();
    const std::vector<Token>& toks = scan.tokens;

    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;

      if (t.text == "random_device") {
        out.push_back(Finding{
            std::string(name()), file.path(), t.line,
            qualified_column(toks, i),
            "std::random_device is nondeterministic; seed from the sweep's "
            "base seed via rme::exec::derive_seed(base, task_index)"});
        continue;
      }

      if (!exec_exempt && is_engine(t.text) &&
          !scan.line_has_ident(t.line, "derive_seed")) {
        out.push_back(Finding{
            std::string(name()), file.path(), t.line,
            qualified_column(toks, i),
            "raw '" + t.text +
                "' construction creates an ad-hoc RNG stream; seed it "
                "with rme::exec::derive_seed(base, task_index) so "
                "parallel sweeps stay order-independent"});
        continue;
      }

      if (!file.in_library()) continue;

      if (t.text == "system_clock") {
        // std::chrono::system_clock anchors the column at `std`.
        std::size_t column = t.column;
        if (i >= 4 && toks[i - 1].text == "::" &&
            toks[i - 2].text == "chrono" && toks[i - 3].text == "::" &&
            toks[i - 4].text == "std" && toks[i - 4].line == t.line) {
          column = toks[i - 4].column;
        }
        out.push_back(Finding{
            std::string(name()), file.path(), t.line, column,
            "wall clock in library code makes results time-dependent; "
            "derive timestamps from the simulated trace (steady_clock is "
            "fine for host measurement)"});
        continue;
      }

      if (is_wall_call(t.text) && i + 1 < toks.size() &&
          toks[i + 1].text == "(" && toks[i + 1].line == t.line) {
        // Member calls (`tracer.time(...)`) are someone else's method.
        if (i >= 1 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
          continue;
        }
        std::size_t column = t.column;
        if (i >= 1 && toks[i - 1].text == "::" && toks[i - 1].line == t.line) {
          if (i >= 2 && toks[i - 2].kind == TokKind::kIdent) {
            if (toks[i - 2].text == "std") column = toks[i - 2].column;
          } else {
            column = toks[i - 1].column;
          }
        }
        out.push_back(Finding{
            std::string(name()), file.path(), t.line, column,
            "'" + t.text +
                "' reads the wall clock in library code; derive timestamps "
                "from the simulated trace"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_determinism_rule() {
  return std::make_unique<DeterminismRule>();
}

}  // namespace rme::analyze
