#pragma once
// rme::analyze — the cross-TU project index.
//
// Per-file rules see one SourceFile at a time; whole-project rules
// (layering, lock-order) need facts from *every* file at once.  The
// driver extracts a small, serializable FileFacts record from each
// lexed file (in parallel — extraction is pure), assembles them into a
// ProjectIndex sorted by path, and runs ProjectRules over the index
// sequentially.  Because FileFacts is a plain value, it is also the
// unit of the content-hash incremental cache (cache.hpp): a file whose
// bytes did not change contributes yesterday's facts without re-lexing.
//
// Facts captured per file:
//   * include directives (target, site, and whether a `layering`
//     suppression covers the site);
//   * RAII guard sites — every std::lock_guard / scoped_lock /
//     unique_lock / shared_lock construction, with the normalized
//     mutex expression it acquires;
//   * acquired-before edges — guard B constructed while guard A is
//     still in scope yields the edge A→B with both sites;
//   * a per-rule suppression summary so cross-TU findings can be
//     silenced at the site they cite.
//
// Mutex identity is lexical: the normalized argument expression
// (`this->` stripped, `.`/`->` flattened to `.`), matched by name
// across translation units.  That is deliberately coarse — same-named
// members of unrelated classes alias — but edges only arise from
// *nested* guards, so aliasing is harmless unless two unrelated
// nestings also disagree on order, which the baseline workflow absorbs.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "rme/analyze/finding.hpp"
#include "rme/analyze/source.hpp"

namespace rme::analyze {

/// One #include directive plus its suppression status.
struct IncludeSite {
  std::string target;      ///< Path between the delimiters.
  std::size_t line = 0;
  std::size_t column = 0;
  bool angled = false;
  bool suppressed = false;  ///< `layering` allow covers this line.
};

/// One RAII guard construction acquiring one mutex.
struct GuardSite {
  std::string mutex;       ///< Normalized expression, e.g. "pool.mutex_".
  std::string guard;       ///< lock_guard | scoped_lock | unique_lock | shared_lock
  std::size_t line = 0;
  std::size_t column = 0;
  bool suppressed = false;  ///< `lock-order` allow covers this line.
};

/// Guard `to` constructed while guard `from` was still in scope.
struct LockEdge {
  std::string from;  ///< Mutex already held.
  std::string to;    ///< Mutex acquired under it.
  std::size_t from_line = 0, from_column = 0;
  std::size_t to_line = 0, to_column = 0;
  bool suppressed = false;  ///< Either endpoint's line is covered.
};

/// Everything the cross-TU rules need from one file.
struct FileFacts {
  std::string path;             ///< As scanned.
  std::size_t token_count = 0;
  std::vector<IncludeSite> includes;
  std::vector<GuardSite> guard_sites;
  std::vector<LockEdge> lock_edges;
};

/// Extracts facts from a lexed file.  Pure; safe to call in parallel.
[[nodiscard]] FileFacts extract_facts(const SourceFile& file);

/// The assembled project: facts for every scanned file, sorted by
/// path so downstream analysis is independent of scan order.
struct ProjectIndex {
  std::vector<FileFacts> files;
};

/// A rule over the whole project rather than one file.  Findings must
/// be emitted in a deterministic order (the index is pre-sorted).
/// Inline suppression is the rule's own job — the per-site
/// `suppressed` flags exist for exactly that — because the driver no
/// longer holds the SourceFiles when project rules run.
class ProjectRule {
 public:
  ProjectRule() = default;
  ProjectRule(const ProjectRule&) = delete;
  ProjectRule& operator=(const ProjectRule&) = delete;
  virtual ~ProjectRule() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;
  virtual void check(const ProjectIndex& index,
                     std::vector<Finding>& out) const = 0;
};

/// Strips everything up to the repository-root marker (`src/`,
/// `tools/`, `bench/`, `tests/`, `examples/`) so absolute and relative
/// invocations agree on file identity (baseline fingerprints, module
/// mapping, DOT and SARIF output).  Paths containing no marker are
/// returned unchanged.
[[nodiscard]] std::string repo_relative(const std::string& path);

}  // namespace rme::analyze
