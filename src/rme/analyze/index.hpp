#pragma once
// rme::analyze — the cross-TU project index.
//
// Per-file rules see one SourceFile at a time; whole-project rules
// (layering, lock-order) need facts from *every* file at once.  The
// driver extracts a small, serializable FileFacts record from each
// lexed file (in parallel — extraction is pure), assembles them into a
// ProjectIndex sorted by path, and runs ProjectRules over the index
// sequentially.  Because FileFacts is a plain value, it is also the
// unit of the content-hash incremental cache (cache.hpp): a file whose
// bytes did not change contributes yesterday's facts without re-lexing.
//
// Facts captured per file:
//   * include directives (target, site, and whether a `layering`
//     suppression covers the site);
//   * RAII guard sites — every std::lock_guard / scoped_lock /
//     unique_lock / shared_lock construction, with the normalized
//     mutex expression it acquires;
//   * acquired-before edges — guard B constructed while guard A is
//     still in scope yields the edge A→B with both sites;
//   * function definitions and lambda bodies (functions.cpp) with
//     their call sites, hot-path annotations (`// rme-hot:` /
//     `// rme-cold:`), and the per-iteration-cost operations the
//     hot-path rule family cares about (allocation, container growth,
//     lock acquisition, blocking I/O, string formatting);
//   * the serve wire-error enumerators when the file is
//     src/rme/serve/protocol.hpp (wire-error-exhaustiveness);
//   * a per-rule suppression summary so cross-TU findings can be
//     silenced at the site they cite.
//
// Mutex identity is lexical: the normalized argument expression
// (`this->` stripped, `.`/`->` flattened to `.`), matched by name
// across translation units.  That is deliberately coarse — same-named
// members of unrelated classes alias — but edges only arise from
// *nested* guards, so aliasing is harmless unless two unrelated
// nestings also disagree on order, which the baseline workflow absorbs.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "rme/analyze/finding.hpp"
#include "rme/analyze/source.hpp"

namespace rme::analyze {

/// One #include directive plus its suppression status.
struct IncludeSite {
  std::string target;      ///< Path between the delimiters.
  std::size_t line = 0;
  std::size_t column = 0;
  bool angled = false;
  bool suppressed = false;  ///< `layering` allow covers this line.
};

/// One RAII guard construction acquiring one mutex.
struct GuardSite {
  std::string mutex;       ///< Normalized expression, e.g. "pool.mutex_".
  std::string guard;       ///< lock_guard | scoped_lock | unique_lock | shared_lock
  std::size_t line = 0;
  std::size_t column = 0;
  bool suppressed = false;  ///< `lock-order` allow covers this line.
};

/// Guard `to` constructed while guard `from` was still in scope.
struct LockEdge {
  std::string from;  ///< Mutex already held.
  std::string to;    ///< Mutex acquired under it.
  std::size_t from_line = 0, from_column = 0;
  std::size_t to_line = 0, to_column = 0;
  bool suppressed = false;  ///< Either endpoint's line is covered.
};

/// One call site inside a function body.  `callee` is the last
/// component of the spelled name (`exec::parallel_map` → parallel_map;
/// `row.set(...)` → set); call sites are deduplicated per callee per
/// function, keeping the first occurrence.
struct CallSite {
  std::string callee;
  std::size_t line = 0;
  std::size_t column = 0;
};

/// One operation the hot-path rule family prices per iteration.
/// `kind` is the family bucket: "alloc" (new / make_unique /
/// make_shared / std::string construction), "growth" (push_back /
/// emplace_back / append with no earlier reserve on the receiver),
/// "lock" (RAII guard acquisition), "blocking" (file/console I/O,
/// sleeps), "format" (std::to_string, *stringstream, snprintf).
struct HotOp {
  std::string kind;
  std::string detail;       ///< Human-readable operation, for messages.
  std::size_t line = 0;
  std::size_t column = 0;
  bool in_loop = false;     ///< Inside a lexical for/while/do in the body.
  bool suppressed = false;  ///< The kind's rule is allowed at this line.
};

/// One function definition or lambda body.  Lambdas are named
/// "<lambda:LINE>" and point at their lexically enclosing definition
/// via `parent`; calls and ops always belong to the innermost
/// enclosing definition.
struct FunctionDef {
  std::string name;         ///< Qualified as spelled (Engine::handle).
  std::size_t line = 0;     ///< Of the name (lambdas: the introducer).
  std::size_t column = 0;
  std::size_t end_line = 0; ///< Line of the body's closing brace.
  bool is_lambda = false;
  bool hot_root = false;    ///< `rme-hot:` annotated, or an implicit
                            ///< exec::parallel_for/map callable.
  bool cold = false;        ///< `rme-cold:` annotated boundary.
  int parent = -1;          ///< Index of the enclosing def, -1 at top.
  std::vector<CallSite> calls;
  std::vector<HotOp> ops;
};

/// One wire-error enumerator from serve/protocol.hpp's ErrorCode.
struct WireCode {
  std::string enumerator;   ///< As spelled, e.g. "kParseError".
  std::size_t line = 0;
};

/// Everything the cross-TU rules need from one file.
struct FileFacts {
  std::string path;             ///< As scanned.
  std::size_t token_count = 0;
  std::vector<IncludeSite> includes;
  std::vector<GuardSite> guard_sites;
  std::vector<LockEdge> lock_edges;
  std::vector<FunctionDef> functions;
  std::vector<WireCode> wire_codes;
};

/// Extracts facts from a lexed file.  Pure; safe to call in parallel.
[[nodiscard]] FileFacts extract_facts(const SourceFile& file);

/// The function/call/op/annotation sub-extractor (functions.cpp);
/// extract_facts calls it, fixtures call it directly.
void extract_function_facts(const SourceFile& file, FileFacts& facts);

/// The assembled project: facts for every scanned file, sorted by
/// path so downstream analysis is independent of scan order.
struct ProjectIndex {
  std::vector<FileFacts> files;
};

/// A rule over the whole project rather than one file.  Findings must
/// be emitted in a deterministic order (the index is pre-sorted).
/// Inline suppression is the rule's own job — the per-site
/// `suppressed` flags exist for exactly that — because the driver no
/// longer holds the SourceFiles when project rules run.
class ProjectRule {
 public:
  ProjectRule() = default;
  ProjectRule(const ProjectRule&) = delete;
  ProjectRule& operator=(const ProjectRule&) = delete;
  virtual ~ProjectRule() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;
  /// One-paragraph rationale plus safe-replacement guidance, rendered
  /// verbatim by `rme_analyze --explain=<rule>`.
  [[nodiscard]] virtual std::string_view explain() const noexcept = 0;
  virtual void check(const ProjectIndex& index,
                     std::vector<Finding>& out) const = 0;
};

/// Strips everything up to the repository-root marker (`src/`,
/// `tools/`, `bench/`, `tests/`, `examples/`) so absolute and relative
/// invocations agree on file identity (baseline fingerprints, module
/// mapping, DOT and SARIF output).  Paths containing no marker are
/// returned unchanged.
[[nodiscard]] std::string repo_relative(const std::string& path);

}  // namespace rme::analyze
