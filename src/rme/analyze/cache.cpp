#include "rme/analyze/cache.hpp"

#include <fstream>
#include <sstream>

#include "rme/analyze/rules.hpp"

namespace rme::analyze {
namespace {

constexpr std::string_view kMagic = "rme-analyze-cache v1";

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out += s[i] == 'n' ? '\n' : s[i];
    } else {
      out += s[i];
    }
  }
  return out;
}

/// Reads the rest of `in` after the current token as one trailing
/// field (the one place spaces are legal: messages, include targets).
std::string rest_of(std::istringstream& in) {
  std::string rest;
  std::getline(in, rest);
  const std::size_t start = rest.find_first_not_of(' ');
  return start == std::string::npos ? std::string{} : rest.substr(start);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

AnalysisCache AnalysisCache::load(const std::filesystem::path& file) {
  AnalysisCache cache;
  std::ifstream in(file);
  if (!in) return cache;
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return cache;
  if (!std::getline(in, line) ||
      line != "fingerprint " + std::string(rules_fingerprint())) {
    return cache;
  }

  std::string rel;
  CacheEntry entry;
  bool in_entry = false;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "file") {
      if (in_entry) return AnalysisCache{};  // Previous entry unterminated.
      std::size_t token_count = 0;
      fields >> std::hex >> entry.hash >> std::dec >> token_count;
      rel = rest_of(fields);
      if (fields.bad() || rel.empty()) return AnalysisCache{};
      entry.facts = FileFacts{};
      entry.facts.path = rel;
      entry.facts.token_count = token_count;
      entry.findings.clear();
      in_entry = true;
    } else if (!in_entry) {
      return AnalysisCache{};
    } else if (tag == "i") {
      IncludeSite inc;
      int angled = 0, supp = 0;
      fields >> inc.line >> inc.column >> angled >> supp;
      inc.target = rest_of(fields);
      if (fields.fail() || inc.target.empty()) return AnalysisCache{};
      inc.angled = angled != 0;
      inc.suppressed = supp != 0;
      entry.facts.includes.push_back(std::move(inc));
    } else if (tag == "g") {
      GuardSite g;
      int supp = 0;
      fields >> g.line >> g.column >> supp >> g.guard >> g.mutex;
      if (fields.fail() || g.mutex.empty()) return AnalysisCache{};
      g.suppressed = supp != 0;
      entry.facts.guard_sites.push_back(std::move(g));
    } else if (tag == "e") {
      LockEdge e;
      int supp = 0;
      fields >> e.from_line >> e.from_column >> e.to_line >> e.to_column >>
          supp >> e.from >> e.to;
      if (fields.fail() || e.to.empty()) return AnalysisCache{};
      e.suppressed = supp != 0;
      entry.facts.lock_edges.push_back(std::move(e));
    } else if (tag == "d") {
      FunctionDef d;
      int lambda = 0, hot = 0, cold = 0;
      fields >> d.line >> d.column >> d.end_line >> lambda >> hot >> cold >>
          d.parent;
      d.name = rest_of(fields);
      if (fields.fail() || d.name.empty()) return AnalysisCache{};
      d.is_lambda = lambda != 0;
      d.hot_root = hot != 0;
      d.cold = cold != 0;
      entry.facts.functions.push_back(std::move(d));
    } else if (tag == "c") {
      if (entry.facts.functions.empty()) return AnalysisCache{};
      CallSite c;
      fields >> c.line >> c.column;
      c.callee = rest_of(fields);
      if (fields.fail() || c.callee.empty()) return AnalysisCache{};
      entry.facts.functions.back().calls.push_back(std::move(c));
    } else if (tag == "o") {
      if (entry.facts.functions.empty()) return AnalysisCache{};
      HotOp op;
      int in_loop = 0, supp = 0;
      fields >> op.line >> op.column >> in_loop >> supp >> op.kind;
      op.detail = unescape(rest_of(fields));
      if (fields.fail() || op.kind.empty()) return AnalysisCache{};
      op.in_loop = in_loop != 0;
      op.suppressed = supp != 0;
      entry.facts.functions.back().ops.push_back(std::move(op));
    } else if (tag == "w") {
      WireCode w;
      fields >> w.line;
      w.enumerator = rest_of(fields);
      if (fields.fail() || w.enumerator.empty()) return AnalysisCache{};
      entry.facts.wire_codes.push_back(std::move(w));
    } else if (tag == "f") {
      Finding f;
      f.file = rel;
      fields >> f.rule >> f.line >> f.column;
      f.message = unescape(rest_of(fields));
      if (fields.fail() || f.rule.empty()) return AnalysisCache{};
      entry.findings.push_back(std::move(f));
    } else if (tag == "end") {
      cache.entries_.emplace(rel, std::move(entry));
      entry = CacheEntry{};
      in_entry = false;
    } else {
      return AnalysisCache{};  // Unknown tag: treat the cache as corrupt.
    }
  }
  if (in_entry) return AnalysisCache{};  // Truncated final entry.
  return cache;
}

const CacheEntry* AnalysisCache::lookup(const std::string& rel_path,
                                        std::uint64_t hash) const {
  const auto it = entries_.find(rel_path);
  if (it == entries_.end() || it->second.hash != hash) return nullptr;
  return &it->second;
}

void AnalysisCache::store(const std::string& rel_path, CacheEntry entry) {
  entries_[rel_path] = std::move(entry);
}

bool AnalysisCache::save(const std::filesystem::path& file) const {
  std::ofstream out(file, std::ios::trunc);
  if (!out) return false;
  out << kMagic << "\n"
      << "fingerprint " << rules_fingerprint() << "\n";
  for (const auto& [rel, entry] : entries_) {
    out << "file " << std::hex << entry.hash << std::dec << " "
        << entry.facts.token_count << " " << rel << "\n";
    for (const IncludeSite& inc : entry.facts.includes) {
      out << "i " << inc.line << " " << inc.column << " "
          << (inc.angled ? 1 : 0) << " " << (inc.suppressed ? 1 : 0) << " "
          << inc.target << "\n";
    }
    for (const GuardSite& g : entry.facts.guard_sites) {
      out << "g " << g.line << " " << g.column << " "
          << (g.suppressed ? 1 : 0) << " " << g.guard << " " << g.mutex
          << "\n";
    }
    for (const LockEdge& e : entry.facts.lock_edges) {
      out << "e " << e.from_line << " " << e.from_column << " " << e.to_line
          << " " << e.to_column << " " << (e.suppressed ? 1 : 0) << " "
          << e.from << " " << e.to << "\n";
    }
    for (const FunctionDef& d : entry.facts.functions) {
      out << "d " << d.line << " " << d.column << " " << d.end_line << " "
          << (d.is_lambda ? 1 : 0) << " " << (d.hot_root ? 1 : 0) << " "
          << (d.cold ? 1 : 0) << " " << d.parent << " " << d.name << "\n";
      for (const CallSite& c : d.calls) {
        out << "c " << c.line << " " << c.column << " " << c.callee << "\n";
      }
      for (const HotOp& op : d.ops) {
        out << "o " << op.line << " " << op.column << " "
            << (op.in_loop ? 1 : 0) << " " << (op.suppressed ? 1 : 0) << " "
            << op.kind << " " << escape(op.detail) << "\n";
      }
    }
    for (const WireCode& w : entry.facts.wire_codes) {
      out << "w " << w.line << " " << w.enumerator << "\n";
    }
    for (const Finding& f : entry.findings) {
      out << "f " << f.rule << " " << f.line << " " << f.column << " "
          << escape(f.message) << "\n";
    }
    out << "end\n";
  }
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace rme::analyze
