// rme::analyze — the function-level sub-extractor behind the hot-path
// rule family (docs/ANALYSIS.md, "Hot-path discipline").
//
// From one lexed file this pass recovers, purely lexically:
//
//   * function definitions — a qualified-id followed by a balanced
//     parameter list, optional specifiers (const/noexcept/override/
//     final/try), an optional trailing return type or constructor
//     initializer list, and then a body brace.  Control-flow keywords
//     (if/for/while/switch/catch) are excluded, so `while (x) {` never
//     registers;
//   * lambda bodies — `[captures](params) {...}` introducers, named
//     "<lambda:LINE>", parented to the lexically enclosing definition.
//     A lambda written directly as an argument of a call whose callee
//     is exec::parallel_for / parallel_map / parallel_map_items is an
//     *implicit hot root*: the pool invokes it once per index, which
//     is exactly the per-item loop the hot-path rules price;
//   * hot annotations — a `// rme-hot: <reason>` comment on the
//     definition line or the line immediately above marks the next
//     definition a hot root; `// rme-cold: <reason>` marks it a cold
//     boundary (never hot, and reachability does not pass through it).
//     The reason is mandatory; a bare marker is inert, mirroring the
//     suppression grammar;
//   * call sites — any identifier directly followed by `(` inside a
//     body (member calls included; the receiver is ignored), keyed by
//     the last path component and deduplicated per definition;
//   * hot ops — the per-iteration costs the rules price (see HotOp in
//     index.hpp), each tagged with loop context and its rule's
//     suppression state;
//   * wire codes — the ErrorCode enumerators when the file is
//     src/rme/serve/protocol.hpp (wire-error-exhaustiveness).
//
// Everything here is an approximation over tokens, deliberately in the
// same spirit as the lock index: coarse, deterministic, and cheap.

#include <algorithm>
#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "rme/analyze/index.hpp"

namespace rme::analyze {
namespace {

constexpr std::array<std::string_view, 34> kNonCalleeKeywords{
    "if",           "for",          "while",      "switch",
    "catch",        "return",       "sizeof",     "alignof",
    "alignas",      "decltype",     "noexcept",   "static_assert",
    "static_cast",  "dynamic_cast", "const_cast", "reinterpret_cast",
    "new",          "delete",       "throw",      "case",
    "do",           "else",         "goto",       "operator",
    "template",     "typename",     "using",      "namespace",
    "requires",     "co_await",     "co_return",  "co_yield",
    "assert",       "defined"};

constexpr std::array<std::string_view, 4> kGuardTypes{
    "lock_guard", "scoped_lock", "unique_lock", "shared_lock"};

constexpr std::array<std::string_view, 3> kParallelCallees{
    "parallel_for", "parallel_map", "parallel_map_items"};

constexpr std::array<std::string_view, 3> kStreamTypes{
    "ifstream", "ofstream", "fstream"};

constexpr std::array<std::string_view, 15> kBlockingCalls{
    "fopen",   "fread",     "fwrite",      "fgets",  "fscanf",
    "fprintf", "fflush",    "getline",     "system", "popen",
    "sleep",   "usleep",    "nanosleep",   "sleep_for", "sleep_until"};

constexpr std::array<std::string_view, 4> kConsoleStreams{
    "cin", "cout", "cerr", "clog"};

constexpr std::array<std::string_view, 2> kFormatStreams{
    "ostringstream", "stringstream"};

constexpr std::array<std::string_view, 3> kFormatCalls{
    "snprintf", "sprintf", "vsnprintf"};

constexpr std::array<std::string_view, 3> kGrowthCalls{
    "push_back", "emplace_back", "append"};

template <std::size_t N>
bool contains(const std::array<std::string_view, N>& set,
              const std::string& s) {
  return std::find(set.begin(), set.end(), s) != set.end();
}

/// The rule a HotOp kind reports under, for suppression lookup.
std::string_view rule_of(std::string_view kind) {
  if (kind == "lock") return "lock-in-hot-path";
  if (kind == "blocking") return "blocking-in-hot-path";
  if (kind == "format") return "format-in-hot-path";
  return "alloc-in-hot-path";  // "alloc" and "growth".
}

/// One parsed `rme-hot:` / `rme-cold:` annotation.
struct Annotation {
  std::size_t line = 0;
  bool cold = false;
};

/// Scans the raw lines for annotation comments.  The marker must live
/// in a `//` comment and carry a non-empty reason; anything else is
/// inert (same contract as allow directives).
std::vector<Annotation> parse_annotations(const SourceFile& file) {
  std::vector<Annotation> out;
  for (std::size_t line = 1; line <= file.line_count(); ++line) {
    const std::string& raw = file.raw_line(line);
    const std::size_t comment = raw.find("//");
    if (comment == std::string::npos) continue;
    for (const bool cold : {false, true}) {
      const std::string_view marker = cold ? "rme-cold:" : "rme-hot:";
      const std::size_t at = raw.find(marker, comment);
      if (at == std::string::npos) continue;
      const std::string reason = raw.substr(at + marker.size());
      if (reason.find_first_not_of(" \t") == std::string::npos) {
        continue;  // Reason is mandatory; a bare marker binds nothing.
      }
      out.push_back(Annotation{line, cold});
    }
  }
  return out;
}

/// Matching token index of the brace/paren/bracket opened at `open`,
/// or toks.size() when unbalanced.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open) {
  int nest = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "(" || t == "{" || t == "[") {
      ++nest;
    } else if (t == ")" || t == "}" || t == "]") {
      if (--nest == 0) return i;
    }
  }
  return toks.size();
}

/// Skips a balanced template argument list; `i` points at the `<`.
std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t i) {
  int angle = 0;
  for (; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "<" || t == "<<") {
      angle += t == "<<" ? 2 : 1;
    } else if (t == ">" || t == ">>") {
      angle -= t == ">>" ? 2 : 1;
      if (angle <= 0) return i + 1;
    } else if (t == ";" || t == "{") {
      break;
    }
  }
  return i;
}

bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }

/// A definition candidate under construction during the first pass.
struct DefRange {
  FunctionDef def;
  std::size_t body_begin = 0;  ///< Token index of the `{`.
  std::size_t body_end = 0;    ///< Token index of the matching `}`.
  int body_depth = 0;          ///< Depth the body brace opens.
};

/// True when, starting one past the `)` of a parameter list, the token
/// stream reads like a function definition and `body` receives the
/// index of the body's `{`.  Accepts cv/ref/noexcept/override/final/
/// try specifiers, a trailing return type, and a constructor
/// initializer list.
bool find_body_brace(const std::vector<Token>& toks, std::size_t after_params,
                     std::size_t& body) {
  std::size_t i = after_params;
  // Specifiers and trailing return type.
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (is_ident(t)) {
      if (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
          t.text == "final" || t.text == "mutable" || t.text == "try") {
        ++i;
        continue;
      }
      return false;  // An identifier here means a declaration/call shape.
    }
    if (t.text == "(") {  // noexcept(...)
      const std::size_t close = skip_balanced(toks, i);
      if (close >= toks.size()) return false;
      i = close + 1;
      continue;
    }
    if (t.text == "->") {  // Trailing return type: skip to `{` or `;`.
      ++i;
      while (i < toks.size() && toks[i].text != "{" && toks[i].text != ";") {
        if (toks[i].text == "<") {
          i = skip_template_args(toks, i);
        } else {
          ++i;
        }
      }
      continue;
    }
    if (t.text == "&" || t.text == "&&") {
      ++i;
      continue;
    }
    if (t.text == ":") {  // Constructor initializer list.
      ++i;
      while (i < toks.size()) {
        while (i < toks.size() && (is_ident(toks[i]) || toks[i].text == "::")) {
          ++i;
        }
        if (i < toks.size() && toks[i].text == "<") {
          i = skip_template_args(toks, i);
        }
        if (i >= toks.size() ||
            (toks[i].text != "(" && toks[i].text != "{")) {
          return false;
        }
        const std::size_t close = skip_balanced(toks, i);
        if (close >= toks.size()) return false;
        i = close + 1;
        if (i < toks.size() && toks[i].text == ",") {
          ++i;
          continue;
        }
        break;
      }
      continue;
    }
    if (t.text == "{") {
      body = i;
      return true;
    }
    return false;
  }
  return false;
}

/// True when the `[` at `i` opens a lambda introducer and `body`
/// receives the body's `{`.  `[[` attributes and subscripts (previous
/// token is a value) are rejected.
bool find_lambda_body(const std::vector<Token>& toks, std::size_t i,
                      std::size_t& body) {
  if (i + 1 < toks.size() && toks[i + 1].text == "[") return false;
  if (i > 0) {
    const Token& prev = toks[i - 1];
    if (is_ident(prev) || prev.kind == TokKind::kNumber ||
        prev.text == ")" || prev.text == "]") {
      return false;  // Subscript, not an introducer.
    }
  }
  const std::size_t close = skip_balanced(toks, i);
  if (close >= toks.size()) return false;
  std::size_t j = close + 1;
  if (j < toks.size() && toks[j].text == "(") {
    const std::size_t params_close = skip_balanced(toks, j);
    if (params_close >= toks.size()) return false;
    j = params_close + 1;
  }
  return find_body_brace(toks, j, body);
}

/// Binds annotations to a definition starting at `line`: the
/// annotation may sit on the definition's first line or the line
/// immediately above it.
void apply_annotations(const std::vector<Annotation>& notes,
                       std::size_t line, FunctionDef& def) {
  for (const Annotation& a : notes) {
    if (a.line != line && a.line + 1 != line) continue;
    if (a.cold) {
      def.cold = true;
    } else {
      def.hot_root = true;
    }
  }
}

/// Innermost definition whose body token range contains `i`; -1 none.
int innermost_def(const std::vector<DefRange>& defs, std::size_t i) {
  int best = -1;
  for (std::size_t d = 0; d < defs.size(); ++d) {
    if (defs[d].body_begin < i && i < defs[d].body_end) {
      if (best < 0 || defs[d].body_begin >
                          defs[static_cast<std::size_t>(best)].body_begin) {
        best = static_cast<int>(d);
      }
    }
  }
  return best;
}

/// Walks back from the `.`/`->` before a member call, collecting the
/// receiver path; normalized like the mutex index (`this->` dropped,
/// separators flattened to `.`).
std::string receiver_before(const std::vector<Token>& toks,
                            std::size_t dot) {
  std::vector<std::string> parts;
  std::size_t i = dot;
  while (i > 0) {
    const Token& t = toks[i - 1];
    if (is_ident(t)) {
      if (t.text != "this") parts.push_back(t.text);
      --i;
      if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->" ||
                    toks[i - 1].text == "::")) {
        --i;
        continue;
      }
    }
    break;
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!out.empty()) out += '.';
    out += *it;
  }
  return out;
}

}  // namespace

void extract_function_facts(const SourceFile& file, FileFacts& facts) {
  const std::vector<Token>& toks = file.tokens().tokens;
  const std::vector<Annotation> notes = parse_annotations(file);

  // Pass 1: definitions and lambdas with their body ranges.  A paren
  // context stack tracks the callee owning each open `(`, so a lambda
  // argument can see whether it is being handed to an exec parallel
  // primitive.
  std::vector<DefRange> defs;
  std::vector<std::string> paren_callees;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.text == "(" && t.kind == TokKind::kPunct) {
      std::string callee;
      if (i > 0 && is_ident(toks[i - 1]) &&
          !contains(kNonCalleeKeywords, toks[i - 1].text)) {
        callee = toks[i - 1].text;
      }
      paren_callees.push_back(std::move(callee));
      continue;
    }
    if (t.text == ")" && t.kind == TokKind::kPunct) {
      if (!paren_callees.empty()) paren_callees.pop_back();
      continue;
    }
    if (t.text == "[" && t.kind == TokKind::kPunct) {
      std::size_t body = 0;
      if (!find_lambda_body(toks, i, body)) continue;
      DefRange range;
      range.def.name = "<lambda:" + std::to_string(t.line) + ">";
      range.def.line = t.line;
      range.def.column = t.column;
      range.def.is_lambda = true;
      range.body_begin = body;
      range.body_end = skip_balanced(toks, body);
      if (range.body_end >= toks.size()) continue;
      range.body_depth = toks[body].depth;
      range.def.end_line = toks[range.body_end].line;
      apply_annotations(notes, t.line, range.def);
      if (!range.def.cold && !paren_callees.empty() &&
          contains(kParallelCallees, paren_callees.back())) {
        range.def.hot_root = true;  // exec callable: runs once per index.
      }
      defs.push_back(std::move(range));
      continue;
    }
    if (!is_ident(t) || contains(kNonCalleeKeywords, t.text)) continue;
    // A definition fires from the *first* token of its (possibly
    // qualified) name, so each definition is seen exactly once: skip
    // tail components and member accesses outright.
    if (i > 0 && (toks[i - 1].text == "::" || toks[i - 1].text == "~" ||
                  toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      continue;
    }
    // Walk forward over `:: ident` pairs to the last name component;
    // destructors (`~`) are deliberately not modelled.
    std::size_t last = i;
    std::string qualified = t.text;
    while (last + 2 < toks.size() && toks[last + 1].text == "::" &&
           is_ident(toks[last + 2]) &&
           !contains(kNonCalleeKeywords, toks[last + 2].text)) {
      last += 2;
      qualified += "::";
      qualified += toks[last].text;
    }
    if (last + 1 >= toks.size() || toks[last + 1].text != "(") continue;
    const std::size_t open = last + 1;
    const std::size_t params_close = skip_balanced(toks, open);
    if (params_close >= toks.size()) continue;
    std::size_t body = 0;
    if (!find_body_brace(toks, params_close + 1, body)) continue;
    DefRange range;
    range.def.name = qualified;
    range.def.line = t.line;
    range.def.column = t.column;
    range.body_begin = body;
    range.body_end = skip_balanced(toks, body);
    if (range.body_end >= toks.size()) continue;
    range.body_depth = toks[body].depth;
    range.def.end_line = toks[range.body_end].line;
    apply_annotations(notes, t.line, range.def);
    defs.push_back(std::move(range));
  }

  // Parent links: innermost enclosing definition (a def's own range
  // does not contain its body brace, so self-parenting cannot happen).
  for (std::size_t d = 0; d < defs.size(); ++d) {
    defs[d].def.parent = innermost_def(defs, defs[d].body_begin);
  }

  // Pass 2: calls and hot ops, attributed to the innermost definition.
  // The loop stack tracks open for/while/do bodies by brace depth.
  std::vector<int> loop_depths;
  bool pending_loop = false;
  bool pending_throw = false;
  int paren_nest = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(") {
        ++paren_nest;
      } else if (t.text == ")") {
        paren_nest = std::max(0, paren_nest - 1);
      } else if (t.text == ";" && paren_nest == 0) {
        pending_loop = false;
        pending_throw = false;
      } else if (t.text == "{") {
        if (pending_loop) {
          loop_depths.push_back(t.depth);
          pending_loop = false;
        }
      } else if (t.text == "}") {
        if (!loop_depths.empty() && loop_depths.back() == t.depth) {
          loop_depths.pop_back();
        }
      }
      continue;
    }
    if (!is_ident(t)) continue;
    if (t.text == "for" || t.text == "while" || t.text == "do") {
      pending_loop = true;
      continue;
    }
    if (t.text == "throw") {
      pending_throw = true;
      continue;
    }
    // Everything inside a `throw <expr>;` statement — the message
    // assembly, the helpers it calls — runs only when the request is
    // already being rejected.  The exception path is cold by
    // definition, so neither ops nor call edges are recorded from it.
    if (pending_throw) continue;
    const int owner = innermost_def(defs, i);
    if (owner < 0) {
      continue;  // File-scope token: no body to attribute to.
    }
    DefRange& range = defs[static_cast<std::size_t>(owner)];
    FunctionDef& def = range.def;
    // In a loop when the innermost open loop body is inside this def's
    // body, or a loop header/unbraced loop statement is pending.
    const bool in_loop =
        pending_loop ||
        (!loop_depths.empty() && loop_depths.back() > range.body_depth);
    const bool member_access =
        i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
    const bool calls_next =
        i + 1 < toks.size() && toks[i + 1].text == "(";

    const auto record_op = [&](std::string kind, std::string detail) {
      HotOp op;
      op.kind = std::move(kind);
      op.detail = std::move(detail);
      op.line = t.line;
      op.column = t.column;
      op.in_loop = in_loop;
      op.suppressed = file.suppressed(rule_of(op.kind), op.line);
      def.ops.push_back(std::move(op));
    };

    // Call sites (deduplicated per callee, first occurrence kept).
    if (calls_next && !contains(kNonCalleeKeywords, t.text)) {
      const bool seen =
          std::any_of(def.calls.begin(), def.calls.end(),
                      [&](const CallSite& c) { return c.callee == t.text; });
      if (!seen) {
        def.calls.push_back(CallSite{t.text, t.line, t.column});
      }
    }

    // Hot ops.
    if (t.text == "new" ) {
      record_op("alloc", "operator new");
      continue;
    }
    if ((t.text == "make_unique" || t.text == "make_shared") &&
        i + 1 < toks.size() &&
        (toks[i + 1].text == "(" || toks[i + 1].text == "<")) {
      record_op("alloc", "std::" + t.text);
      continue;
    }
    if (t.text == "string" && i >= 2 && toks[i - 1].text == "::" &&
        toks[i - 2].text == "std" && i + 1 < toks.size()) {
      const Token& next = toks[i + 1];
      const bool constructs =
          is_ident(next) || next.text == "(" || next.text == "{";
      // `std::string()` / `std::string{}` / `std::string s;` is the
      // empty string: SSO, never allocates (the common "no label"
      // ternary arm and the accumulate-into pattern).
      bool benign =
          i + 2 < toks.size() &&
          ((next.text == "(" && toks[i + 2].text == ")") ||
           (next.text == "{" && toks[i + 2].text == "}") ||
           (is_ident(next) && toks[i + 2].text == ";"));
      // `std::string v = f(...);` — a prvalue call initializer is
      // copy-elided into `v`; any allocation happened (and is priced)
      // inside f.  Only a pure call chain qualifies: an operator at
      // the top level (`a + b`) or a trailing non-`)` (`= other;`,
      // `= "literal";`) is a real construction.
      if (!benign && is_ident(next) && i + 2 < toks.size() &&
          toks[i + 2].text == "=") {
        benign = true;
        int nest = 0;
        std::string_view last;
        for (std::size_t k = i + 3; k < toks.size(); ++k) {
          const std::string& s = toks[k].text;
          if (s == "(" || s == "{" || s == "[") {
            ++nest;
          } else if (s == ")" || s == "}" || s == "]") {
            --nest;
          } else if (nest == 0) {
            if (s == ";") break;
            if (!is_ident(toks[k]) && s != "::" && s != "." && s != "->") {
              benign = false;
              break;
            }
          }
          last = s;
        }
        if (last != ")") benign = false;
      }
      const bool is_static =
          i >= 3 && is_ident(toks[i - 3]) && toks[i - 3].text == "static";
      if (constructs && !benign && !is_static) {
        record_op("alloc", "std::string construction");
      }
      continue;
    }
    if (member_access && calls_next && contains(kGrowthCalls, t.text)) {
      const std::string receiver = receiver_before(toks, i - 1);
      // A reserve anywhere earlier in the *outermost* enclosing
      // definition counts: lambdas grow captured containers their
      // parent reserved.
      std::size_t scan_from = range.body_begin;
      for (int p = def.parent; p >= 0;
           p = defs[static_cast<std::size_t>(p)].def.parent) {
        scan_from = defs[static_cast<std::size_t>(p)].body_begin;
      }
      bool reserved = false;
      for (std::size_t k = scan_from; k < i && !reserved; ++k) {
        if (is_ident(toks[k]) && toks[k].text == "reserve" && k > 0 &&
            (toks[k - 1].text == "." || toks[k - 1].text == "->") &&
            receiver_before(toks, k - 1) == receiver) {
          reserved = true;
        }
      }
      if (!reserved) {
        record_op("growth", t.text + " on '" + receiver + "'");
      }
      continue;
    }
    if (!member_access && contains(kGuardTypes, t.text)) {
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].text == "<") {
        j = skip_template_args(toks, j);
      }
      if (j < toks.size() && is_ident(toks[j])) ++j;
      if (j < toks.size() && (toks[j].text == "(" || toks[j].text == "{")) {
        record_op("lock", "std::" + t.text + " acquisition");
      }
      continue;
    }
    if (!member_access && contains(kStreamTypes, t.text)) {
      record_op("blocking", "std::" + t.text);
      continue;
    }
    if (contains(kConsoleStreams, t.text)) {
      record_op("blocking", "std::" + t.text);
      continue;
    }
    if (calls_next && contains(kBlockingCalls, t.text)) {
      record_op("blocking", t.text + "()");
      continue;
    }
    if (t.text == "to_string" && calls_next && i >= 2 &&
        toks[i - 1].text == "::" && toks[i - 2].text == "std") {
      record_op("format", "std::to_string");
      continue;
    }
    if (!member_access && contains(kFormatStreams, t.text)) {
      record_op("format", "std::" + t.text);
      continue;
    }
    if (calls_next && contains(kFormatCalls, t.text)) {
      record_op("format", t.text + "()");
      continue;
    }
  }

  facts.functions.reserve(defs.size());
  for (DefRange& range : defs) {
    facts.functions.push_back(std::move(range.def));
  }

  // Wire codes: the serve protocol's error enum, captured only from
  // the canonical header so fixture trees can model it by path.
  if (repo_relative(file.path()) == "src/rme/serve/protocol.hpp") {
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (!(is_ident(toks[i]) && toks[i].text == "enum" &&
            is_ident(toks[i + 1]) && toks[i + 1].text == "class" &&
            is_ident(toks[i + 2]) && toks[i + 2].text == "ErrorCode")) {
        continue;
      }
      std::size_t j = i + 3;
      while (j < toks.size() && toks[j].text != "{") ++j;
      const std::size_t close = skip_balanced(toks, j);
      bool expect_name = true;
      for (std::size_t k = j + 1; k < close && k < toks.size(); ++k) {
        if (toks[k].text == ",") {
          expect_name = true;
        } else if (expect_name && is_ident(toks[k])) {
          facts.wire_codes.push_back(WireCode{toks[k].text, toks[k].line});
          expect_name = false;
        }
      }
      break;
    }
  }
}

}  // namespace rme::analyze
