#include "rme/artifact/artifact.hpp"

#include <cstdlib>
#include <sstream>
#include <string_view>
#include <utility>

namespace rme::artifact {

namespace {

Json precision_json(Precision p) { return Json::string(to_string(p)); }

Precision precision_from(const Json& j) {
  const std::string& s = j.as_string();
  if (s == "single") return Precision::kSingle;
  if (s == "double") return Precision::kDouble;
  throw JsonError("unknown precision '" + s + "'");
}

std::size_t size_from(const Json& j) {
  return static_cast<std::size_t>(j.as_count());
}

}  // namespace

Json to_json(const ArtifactHeader& h) {
  Json j = Json::object();
  j.set("kind", Json::string("header"));
  j.set("schema", Json::number(static_cast<double>(h.schema)));
  j.set("platform", Json::string(h.platform));
  j.set("reps", Json::number(static_cast<double>(h.repetitions)));
  j.set("qc", Json::boolean(h.qc));
  j.set("dropout", Json::number(h.dropout));
  j.set("spike", Json::number(h.spike));
  j.set("noise_seed", Json::number(static_cast<double>(h.noise_seed)));
  j.set("fault_seed", Json::number(static_cast<double>(h.fault_seed)));
  j.set("sample_hz", Json::number(h.sample_hz));
  Json retry = Json::object();
  retry.set("max_attempts",
            Json::number(static_cast<double>(h.retry.max_attempts)));
  retry.set("initial_backoff", Json::number(h.retry.initial_backoff.value()));
  retry.set("multiplier", Json::number(h.retry.backoff_multiplier));
  retry.set("max_backoff", Json::number(h.retry.max_backoff.value()));
  retry.set("deadline", Json::number(h.retry.step_deadline.value()));
  retry.set("jitter", Json::number(h.retry.jitter));
  j.set("retry", std::move(retry));
  return j;
}

ArtifactHeader header_from_json(const Json& j) {
  ArtifactHeader h;
  h.schema = j.at("schema").as_count();
  h.platform = j.at("platform").as_string();
  h.repetitions = size_from(j.at("reps"));
  h.qc = j.at("qc").as_bool();
  h.dropout = j.at("dropout").as_number();
  h.spike = j.at("spike").as_number();
  h.noise_seed = j.at("noise_seed").as_count();
  h.fault_seed = j.at("fault_seed").as_count();
  h.sample_hz = j.at("sample_hz").as_number();
  const Json& r = j.at("retry");
  h.retry.max_attempts = size_from(r.at("max_attempts"));
  h.retry.initial_backoff = Seconds{r.at("initial_backoff").as_number()};
  h.retry.backoff_multiplier = r.at("multiplier").as_number();
  h.retry.max_backoff = Seconds{r.at("max_backoff").as_number()};
  h.retry.step_deadline = Seconds{r.at("deadline").as_number()};
  h.retry.jitter = r.at("jitter").as_number();
  return h;
}

Json to_json(const StepRecord& s) {
  Json j = Json::object();
  j.set("kind", Json::string("step"));
  j.set("index", Json::number(static_cast<double>(s.index)));
  Json kernel = Json::object();
  kernel.set("name", Json::string(s.kernel_name));
  kernel.set("flops", Json::number(s.flops));
  kernel.set("bytes", Json::number(s.bytes));
  kernel.set("precision", precision_json(s.precision));
  j.set("kernel", std::move(kernel));
  Json reps = Json::array();
  for (const RepRecord& r : s.reps) {
    Json rep = Json::object();
    rep.set("s", Json::number(r.seconds));
    rep.set("j", Json::number(r.joules));
    rep.set("w", Json::number(r.watts));
    rep.set("capped", Json::boolean(r.capped));
    rep.set("attempts", Json::number(static_cast<double>(r.attempts)));
    rep.set("qc", Json::boolean(r.passed_qc));
    rep.set("outlier", Json::boolean(r.outlier));
    rep.set("backoff", Json::number(r.backoff_seconds));
    rep.set("deadline_hit", Json::boolean(r.deadline_hit));
    Json trace = Json::array();
    for (const auto& [sec, watts] : r.trace) {
      Json phase = Json::array();
      phase.push(Json::number(sec));
      phase.push(Json::number(watts));
      trace.push(std::move(phase));
    }
    rep.set("trace", std::move(trace));
    reps.push(std::move(rep));
  }
  j.set("reps", std::move(reps));
  Json q = Json::object();
  Json attempts = Json::array();
  for (std::size_t a : s.attempts_per_rep) {
    attempts.push(Json::number(static_cast<double>(a)));
  }
  q.set("attempts", std::move(attempts));
  q.set("attempted", Json::number(static_cast<double>(s.reps_attempted)));
  q.set("retried", Json::number(static_cast<double>(s.reps_retried)));
  q.set("kept_degraded",
        Json::number(static_cast<double>(s.reps_kept_degraded)));
  q.set("discarded", Json::number(static_cast<double>(s.reps_discarded)));
  q.set("outliers",
        Json::number(static_cast<double>(s.reps_discarded_outlier)));
  q.set("dropped", Json::number(static_cast<double>(s.dropped_samples)));
  q.set("saturated", Json::number(static_cast<double>(s.saturated_samples)));
  q.set("deadline_exhausted",
        Json::number(static_cast<double>(s.reps_deadline_exhausted)));
  q.set("backoff", Json::number(s.backoff_seconds));
  q.set("degraded", Json::boolean(s.degraded));
  j.set("quality", std::move(q));
  return j;
}

StepRecord step_from_json(const Json& j) {
  StepRecord s;
  s.index = size_from(j.at("index"));
  const Json& kernel = j.at("kernel");
  s.kernel_name = kernel.at("name").as_string();
  s.flops = kernel.at("flops").as_number();
  s.bytes = kernel.at("bytes").as_number();
  s.precision = precision_from(kernel.at("precision"));
  for (const Json& rep : j.at("reps").items()) {
    RepRecord r;
    r.seconds = rep.at("s").as_number();
    r.joules = rep.at("j").as_number();
    r.watts = rep.at("w").as_number();
    r.capped = rep.at("capped").as_bool();
    r.attempts = size_from(rep.at("attempts"));
    r.passed_qc = rep.at("qc").as_bool();
    r.outlier = rep.at("outlier").as_bool();
    r.backoff_seconds = rep.at("backoff").as_number();
    r.deadline_hit = rep.at("deadline_hit").as_bool();
    for (const Json& phase : rep.at("trace").items()) {
      if (phase.items().size() != 2) {
        throw JsonError("trace phase must be a [seconds, watts] pair");
      }
      r.trace.emplace_back(phase.items()[0].as_number(),
                           phase.items()[1].as_number());
    }
    s.reps.push_back(std::move(r));
  }
  const Json& q = j.at("quality");
  for (const Json& a : q.at("attempts").items()) {
    s.attempts_per_rep.push_back(size_from(a));
  }
  s.reps_attempted = size_from(q.at("attempted"));
  s.reps_retried = size_from(q.at("retried"));
  s.reps_kept_degraded = size_from(q.at("kept_degraded"));
  s.reps_discarded = size_from(q.at("discarded"));
  s.reps_discarded_outlier = size_from(q.at("outliers"));
  s.dropped_samples = size_from(q.at("dropped"));
  s.saturated_samples = size_from(q.at("saturated"));
  s.reps_deadline_exhausted = size_from(q.at("deadline_exhausted"));
  s.backoff_seconds = q.at("backoff").as_number();
  s.degraded = q.at("degraded").as_bool();
  return s;
}

Json to_json(const FitRecord& f) {
  Json j = Json::object();
  j.set("kind", Json::string("fit"));
  j.set("eps_single", Json::number(f.eps_single));
  j.set("delta_double", Json::number(f.delta_double));
  j.set("eps_mem", Json::number(f.eps_mem));
  j.set("const_power", Json::number(f.const_power));
  j.set("r_squared", Json::number(f.r_squared));
  j.set("samples", Json::number(static_cast<double>(f.samples)));
  return j;
}

FitRecord fit_from_json(const Json& j) {
  FitRecord f;
  f.eps_single = j.at("eps_single").as_number();
  f.delta_double = j.at("delta_double").as_number();
  f.eps_mem = j.at("eps_mem").as_number();
  f.const_power = j.at("const_power").as_number();
  f.r_squared = j.at("r_squared").as_number();
  f.samples = size_from(j.at("samples"));
  return f;
}

StepRecord make_step_record(std::size_t index,
                            const rme::power::SessionResult& result) {
  StepRecord s;
  s.index = index;
  s.kernel_name = result.kernel.name;
  s.flops = result.kernel.flops;
  s.bytes = result.kernel.bytes;
  s.precision = result.kernel.precision;
  for (const rme::power::RepMeasurement& r : result.reps) {
    RepRecord rep;
    rep.seconds = r.seconds.value();
    rep.joules = r.joules.value();
    rep.watts = r.avg_watts.value();
    rep.capped = r.capped;
    rep.attempts = r.retries + 1;
    rep.passed_qc = r.passed_qc;
    rep.outlier = r.outlier;
    rep.backoff_seconds = r.backoff_seconds.value();
    rep.deadline_hit = r.deadline_hit;
    for (const rme::sim::PowerPhase& phase : r.trace.phases()) {
      rep.trace.emplace_back(phase.seconds.value(), phase.watts.value());
    }
    s.reps.push_back(std::move(rep));
  }
  const rme::power::SessionQuality& q = result.quality;
  s.attempts_per_rep = q.attempts_per_rep;
  s.reps_attempted = q.reps_attempted;
  s.reps_retried = q.reps_retried;
  s.reps_kept_degraded = q.reps_kept_degraded;
  s.reps_discarded = q.reps_discarded;
  s.reps_discarded_outlier = q.reps_discarded_outlier;
  s.dropped_samples = q.dropped_samples;
  s.saturated_samples = q.saturated_samples;
  s.reps_deadline_exhausted = q.reps_deadline_exhausted;
  s.backoff_seconds = q.backoff_seconds.value();
  s.degraded = q.degraded || q.reps_deadline_exhausted > 0;
  return s;
}

FitRecord make_fit_record(const rme::fit::EnergyFit& fit,
                          std::size_t samples) {
  FitRecord f;
  f.eps_single = fit.coefficients.eps_single.value();
  f.delta_double = fit.coefficients.delta_double.value();
  f.eps_mem = fit.coefficients.eps_mem.value();
  f.const_power = fit.coefficients.const_power.value();
  f.r_squared = fit.regression.r_squared;
  f.samples = samples;
  return f;
}

ArtifactWriter::ArtifactWriter(std::string path,
                               std::size_t existing_records,
                               ChaosConfig chaos)
    : path_(std::move(path)), records_(existing_records), chaos_(chaos) {
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    throw ArtifactError("artifact: cannot open " + path_ + " for append");
  }
}

void ArtifactWriter::append(const Json& record) {
  const std::string frame = frame_record(record.dump());
  if (chaos_.kill_after_records >= 0 &&
      records_ == static_cast<std::size_t>(chaos_.kill_after_records)) {
    if (chaos_.tear && frame.size() > 1) {
      // A torn append: half the frame reaches disk, then the process
      // dies without running destructors — the crash the WAL design
      // must recover from.
      out_.write(frame.data(),
                 static_cast<std::streamsize>(frame.size() / 2));
      out_.flush();
    }
    std::_Exit(137);
  }
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out_.flush();
  if (!out_.good()) {
    throw ArtifactError("artifact: write failed on " + path_);
  }
  records_ += 1;
}

ReadResult read_artifact(const std::string& path) {
  ReadResult result;
  std::string image;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return result;  // Missing file: an empty, valid artifact.
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
      result.status = ScanStatus::kCorrupt;
      result.message = "artifact: read failed on " + path;
      return result;
    }
    image = buf.str();
  }

  const FrameScan scan = scan_frames(image);
  result.status = scan.status;
  result.message = scan.error;
  result.valid_bytes = scan.valid_bytes;
  result.dropped_bytes = scan.dropped_bytes;
  if (scan.status == ScanStatus::kCorrupt) return result;

  const auto corrupt = [&](std::size_t record_no, const std::string& what) {
    result.status = ScanStatus::kCorrupt;
    result.message =
        "record " + std::to_string(record_no + 1) + ": " + what;
    return result;
  };

  for (std::size_t i = 0; i < scan.payloads.size(); ++i) {
    Json record;
    try {
      record = Json::parse(scan.payloads[i]);
      const std::string& kind = record.at("kind").as_string();
      if (i == 0) {
        if (kind != "header") {
          return corrupt(i, "expected a header record, got '" + kind + "'");
        }
        const std::uint64_t schema = record.at("schema").as_count();
        if (schema != kSchemaVersion) {
          return corrupt(
              i, "unsupported schema version " + std::to_string(schema) +
                     " (this build reads version " +
                     std::to_string(kSchemaVersion) + ")");
        }
        result.header = header_from_json(record);
        result.has_header = true;
      } else if (kind == "step") {
        if (result.has_fit) {
          return corrupt(i, "step record after the fit record");
        }
        StepRecord step = step_from_json(record);
        if (step.index != result.steps.size()) {
          return corrupt(i, "step index " + std::to_string(step.index) +
                                " out of order (expected " +
                                std::to_string(result.steps.size()) + ")");
        }
        result.steps.push_back(std::move(step));
      } else if (kind == "fit") {
        if (result.has_fit) return corrupt(i, "duplicate fit record");
        result.fit = fit_from_json(record);
        result.has_fit = true;
      } else {
        return corrupt(i, "unknown record kind '" + kind + "'");
      }
    } catch (const JsonError& err) {
      return corrupt(i, err.what());
    }
    result.records += 1;
  }
  return result;
}

CoefficientScan read_artifact_coefficients(const std::string& path) {
  CoefficientScan result;
  std::string image;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return result;  // Missing file: an empty, valid artifact.
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
      result.status = ScanStatus::kCorrupt;
      result.message = "artifact: read failed on " + path;
      return result;
    }
    image = buf.str();
  }

  const FrameScan scan = scan_frames(image);
  result.status = scan.status;
  result.message = scan.error;
  if (scan.status == ScanStatus::kCorrupt) return result;

  const auto corrupt = [&](std::size_t record_no, const std::string& what) {
    result.status = ScanStatus::kCorrupt;
    result.message =
        "record " + std::to_string(record_no + 1) + ": " + what;
    return result;
  };

  // Step records are the journal's bulk; the writer serializes them
  // with "kind" first (to_json member order is fixed), so this prefix
  // identifies them without parsing.  Anything else — including a step
  // some other writer serialized differently — takes the full parse.
  constexpr std::string_view kStepPrefix = "{\"kind\":\"step\",";

  for (std::size_t i = 0; i < scan.payloads.size(); ++i) {
    const std::string& payload = scan.payloads[i];
    if (i > 0 && payload.compare(0, kStepPrefix.size(), kStepPrefix) == 0) {
      if (result.has_fit) {
        return corrupt(i, "step record after the fit record");
      }
      result.steps_skipped += 1;
      result.records += 1;
      continue;
    }
    try {
      const Json record = Json::parse(payload);
      const std::string& kind = record.at("kind").as_string();
      if (i == 0) {
        if (kind != "header") {
          return corrupt(i, "expected a header record, got '" + kind + "'");
        }
        const std::uint64_t schema = record.at("schema").as_count();
        if (schema != kSchemaVersion) {
          return corrupt(
              i, "unsupported schema version " + std::to_string(schema) +
                     " (this build reads version " +
                     std::to_string(kSchemaVersion) + ")");
        }
        result.header = header_from_json(record);
        result.has_header = true;
      } else if (kind == "step") {
        if (result.has_fit) {
          return corrupt(i, "step record after the fit record");
        }
        result.steps_skipped += 1;
      } else if (kind == "fit") {
        if (result.has_fit) return corrupt(i, "duplicate fit record");
        result.fit = fit_from_json(record);
        result.has_fit = true;
      } else {
        return corrupt(i, "unknown record kind '" + kind + "'");
      }
    } catch (const JsonError& err) {
      return corrupt(i, err.what());
    }
    result.records += 1;
  }
  return result;
}

}  // namespace rme::artifact
