#pragma once
// rme::artifact — the capture/resume/replay drivers behind
// `rme_cli sweep --artifact` and `rme_cli replay` (docs/REPLAY.md).
//
// Capture runs the fault-injection measurement sweep (both precisions
// of a platform, the same kernel schedule as `rme_cli faults`) as a
// write-ahead journal: header first, one step record per kernel as it
// completes, then the eq. (9) fit.  Resume reads the journal back,
// keeps every completed step, and re-executes only the missing tail —
// each step is a pure function of (header, index), so the resumed
// artifact, report, and CSV are byte-identical to an uninterrupted
// run.  Replay re-derives the analysis (and optionally the fit) from
// the captured records alone, with no simulation at all.

#include <iosfwd>
#include <string>
#include <vector>

#include "rme/artifact/artifact.hpp"

namespace rme::obs {
class Tracer;
}

namespace rme::artifact {

/// True for the platforms an artifact sweep knows how to drive.
[[nodiscard]] bool valid_platform(const std::string& platform);

/// The kernel schedule of one artifact sweep: the Fig. 4 intensity
/// grid at cycling duration tiers, single precision then double —
/// identical to the `rme_cli faults` sweep.  Step index i always maps
/// to the same kernel for a given platform.
[[nodiscard]] std::vector<rme::sim::KernelDesc> platform_sweep_kernels(
    const std::string& platform);

/// Flattens step records into eq. (9) fit samples (outliers skipped).
[[nodiscard]] std::vector<rme::fit::EnergySample> samples_from_steps(
    const std::vector<StepRecord>& steps);

/// Deterministic per-rep CSV of a step list (to_chars number format;
/// byte-identical across capture, resume, and replay).
void write_steps_csv(std::ostream& os, const std::vector<StepRecord>& steps);

/// Renders the human-readable session report shared by capture and
/// replay: header summary, QC accounting, and the fit table.
void render_session_report(std::ostream& os, const ArtifactHeader& header,
                           const std::vector<StepRecord>& steps,
                           const FitRecord& fit);

/// Options for a capture/resume sweep.
struct SweepOptions {
  std::string artifact_path;
  bool resume = false;
  std::string csv_path;       ///< Empty: no CSV output.
  ChaosConfig chaos{};        ///< Crash-harness hooks (tests only).
  obs::Tracer* tracer = nullptr;  ///< Counters: steps resumed/measured,
                                  ///< torn-tail bytes, corruption events.
};

/// Runs (or resumes) an artifact sweep.  `requested.platform` may be
/// empty only when resuming an artifact that already has its header.
/// Returns an rme::cli exit code: kExitOk, kExitDegraded (a step
/// exhausted its retry policy or kept degraded reps), kExitUsage
/// (bad platform, or flags inconsistent with the stored header), or
/// kExitCorruptArtifact.
[[nodiscard]] int run_capture_sweep(const ArtifactHeader& requested,
                                    const SweepOptions& options,
                                    std::ostream& out, std::ostream& err);

/// Options for replaying a completed artifact.
struct ReplayOptions {
  std::string artifact_path;
  bool refit = false;    ///< Re-run the eq. (9) fit from the records.
  std::string csv_path;  ///< Empty: no CSV output.
  obs::Tracer* tracer = nullptr;  ///< Counters: steps/reps replayed,
                                  ///< corruption events.
};

/// Replays a completed artifact without re-simulating.  An incomplete
/// journal (missing steps or fit) replays as kExitCorruptArtifact:
/// replay promises analysis of a *finished* session.
[[nodiscard]] int run_replay(const ReplayOptions& options, std::ostream& out,
                             std::ostream& err);

}  // namespace rme::artifact
