#include "rme/artifact/format.hpp"

#include "rme/artifact/crc32.hpp"

namespace rme::artifact {

namespace {
constexpr std::string_view kMagic = "RMEA ";
constexpr std::size_t kCrcDigits = 8;
// "RMEA " + 8 hex digits + ' ' + payload.
constexpr std::size_t kPrefixLen = 5 + kCrcDigits + 1;
}  // namespace

std::string_view to_string(ScanStatus s) noexcept {
  switch (s) {
    case ScanStatus::kOk: return "ok";
    case ScanStatus::kTruncatedTail: return "truncated-tail";
    case ScanStatus::kCorrupt: return "corrupt";
  }
  return "?";
}

std::string frame_record(std::string_view payload) {
  std::string line;
  line.reserve(kPrefixLen + payload.size() + 1);
  line += kMagic;
  line += crc32_hex(payload);
  line += ' ';
  line += payload;
  line += '\n';
  return line;
}

namespace {

/// Verifies one complete (newline-stripped) line; returns the payload
/// through `payload` or an explanation through `error`.
bool verify_line(std::string_view line, std::string_view* payload,
                 std::string* error) {
  if (line.size() < kPrefixLen || line.substr(0, kMagic.size()) != kMagic) {
    *error = "bad record magic (expected 'RMEA ')";
    return false;
  }
  const std::string_view crc_text = line.substr(kMagic.size(), kCrcDigits);
  for (const char c : crc_text) {
    const bool hex =
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) {
      *error = "malformed checksum field";
      return false;
    }
  }
  if (line[kMagic.size() + kCrcDigits] != ' ') {
    *error = "malformed checksum field";
    return false;
  }
  const std::string_view body = line.substr(kPrefixLen);
  if (crc32_hex(body) != crc_text) {
    *error = "checksum mismatch";
    return false;
  }
  *payload = body;
  return true;
}

}  // namespace

FrameScan scan_frames(std::string_view image) {
  FrameScan scan;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < image.size()) {
    const std::size_t nl = image.find('\n', pos);
    ++line_no;
    if (nl == std::string_view::npos) {
      // Torn final line: a crashed append never wrote its newline.
      scan.status = ScanStatus::kTruncatedTail;
      scan.dropped_bytes = image.size() - pos;
      return scan;
    }
    std::string_view payload;
    std::string error;
    if (!verify_line(image.substr(pos, nl - pos), &payload, &error)) {
      scan.status = ScanStatus::kCorrupt;
      scan.error = "record " + std::to_string(line_no) + ": " + error;
      return scan;
    }
    scan.payloads.emplace_back(payload);
    pos = nl + 1;
    scan.valid_bytes = pos;
  }
  return scan;
}

}  // namespace rme::artifact
