#pragma once
// rme::artifact — CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// over byte ranges.  Every record line of a session artifact carries the
// checksum of its JSON payload so torn writes and byte flips are
// detected at read time instead of surfacing as silently wrong fits
// (docs/REPLAY.md, "Record framing").

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace rme::artifact {

/// CRC-32 of `data` (initial value 0xFFFFFFFF, final xor 0xFFFFFFFF —
/// the zlib/PNG convention, so `crc32("123456789") == 0xCBF43926`).
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

/// The checksum as exactly eight lowercase hex digits — the fixed-width
/// form embedded in record frames.
[[nodiscard]] std::string crc32_hex(std::string_view data);

}  // namespace rme::artifact
