#pragma once
// rme::artifact — record framing for the .rmea session artifact.
//
// An artifact is an append-only, line-oriented write-ahead journal.
// Each record is one line:
//
//   RMEA <crc32-hex, 8 digits> <json-payload>\n
//
// where the checksum covers exactly the payload bytes.  The framing is
// what makes crash recovery decidable (docs/REPLAY.md):
//
//   * a file that is a prefix of a valid artifact ends either on a
//     record boundary or inside a torn final line.  A torn line cannot
//     end in '\n', so "last chunk lacks its newline" ⇒ torn write ⇒
//     drop the tail, keep every complete record (kTruncatedTail);
//   * a '\n'-terminated line whose magic, checksum, or payload does not
//     verify cannot be produced by a torn append — something rewrote
//     bytes ⇒ kCorrupt, never a silent mis-read.
//
// An unterminated tail that happens to verify is still dropped: it is
// indistinguishable from the prefix of a longer torn record, and
// re-executing one journal step is always safe (steps are pure
// functions of their index — the rme::exec derive_seed contract).

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace rme::artifact {

/// Classification of one scanned file image.
enum class ScanStatus {
  kOk,             ///< Every byte accounted for by valid records.
  kTruncatedTail,  ///< Valid records then a torn final line (dropped).
  kCorrupt,        ///< A complete line failed verification.
};

[[nodiscard]] std::string_view to_string(ScanStatus s) noexcept;

/// Result of scanning a raw artifact image.
struct FrameScan {
  ScanStatus status = ScanStatus::kOk;
  std::vector<std::string> payloads;  ///< Verified JSON payloads, in order.
  std::size_t valid_bytes = 0;  ///< Prefix length covered by valid records.
  std::size_t dropped_bytes = 0;  ///< Torn-tail bytes past valid_bytes.
  std::string error;  ///< For kCorrupt: what failed, with a line number.
};

/// Frames one payload into its record line (including the newline).
[[nodiscard]] std::string frame_record(std::string_view payload);

/// Scans a whole artifact image into verified payloads.
[[nodiscard]] FrameScan scan_frames(std::string_view image);

}  // namespace rme::artifact
