#pragma once
// rme::artifact — a minimal, deterministic JSON value for artifact
// records.
//
// Why not reuse a DOM with map-ordered members: artifact records must
// survive write → read → write *byte-identically* (the resume proof in
// tests/chaos_runner.cpp diffs whole artifacts), so objects here keep
// insertion order, and numbers are formatted with std::to_chars
// shortest round-trip form — locale-free, and guaranteed to parse back
// to the same double bit pattern.  The parser accepts exactly the JSON
// grammar this writer emits plus standard whitespace; anything else
// throws JsonError with a byte offset.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rme::artifact {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One JSON value.  Objects preserve member insertion order.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;

  [[nodiscard]] static Json boolean(bool b);
  [[nodiscard]] static Json number(double v);
  [[nodiscard]] static Json string(std::string s);
  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }

  /// Appends an object member (no duplicate check; callers own schema).
  void set(std::string key, Json value);
  /// Appends an array element.
  void push(Json value);

  /// Object lookup; throws JsonError when absent or not an object.
  [[nodiscard]] const Json& at(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const noexcept;

  /// Typed accessors; throw JsonError on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// as_number checked to be an exact non-negative integer <= 2^53.
  [[nodiscard]] std::uint64_t as_count() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;

  /// Compact single-line serialization (no spaces, members in insertion
  /// order, numbers in to_chars shortest form).
  [[nodiscard]] std::string dump() const;

  /// Parses one JSON document; trailing non-whitespace throws.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Shortest round-trip decimal form of `v` (std::to_chars); the one
/// number format used across artifact records.
[[nodiscard]] std::string format_number(double v);

}  // namespace rme::artifact
