#include "rme/artifact/json.hpp"

#include <charconv>
#include <cmath>
#include <system_error>

namespace rme::artifact {

std::string format_number(double v) {
  // Integers up to 2^53 print without an exponent or fraction so counts
  // and indices stay human-readable (and re-parse as the same double).
  char buf[64];
  std::to_chars_result r{};
  if (std::nearbyint(v) == v && std::fabs(v) < 9.007199254740992e15) {
    r = std::to_chars(buf, buf + sizeof buf,
                      static_cast<long long>(v));
  } else {
    r = std::to_chars(buf, buf + sizeof buf, v);
  }
  return std::string(buf, r.ptr);
}

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  if (!std::isfinite(v)) throw JsonError("non-finite number in record");
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

void Json::set(std::string key, Json value) {
  if (kind_ != Kind::kObject) throw JsonError("set() on non-object");
  members_.emplace_back(std::move(key), std::move(value));
}

void Json::push(Json value) {
  if (kind_ != Kind::kArray) throw JsonError("push() on non-array");
  items_.push_back(std::move(value));
}

const Json& Json::at(std::string_view key) const {
  if (kind_ != Kind::kObject) throw JsonError("at() on non-object");
  for (const auto& [k, v] : members_) {
    if (k == key) return v;
  }
  throw JsonError("missing record field '" + std::string(key) + "'");
}

bool Json::has(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return false;
  for (const auto& [k, v] : members_) {
    if (k == key) return true;
  }
  return false;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) throw JsonError("expected a boolean");
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber) throw JsonError("expected a number");
  return number_;
}

std::uint64_t Json::as_count() const {
  const double v = as_number();
  if (!(v >= 0.0) || std::nearbyint(v) != v || v > 9.007199254740992e15) {
    throw JsonError("expected a non-negative integer count");
  }
  return static_cast<std::uint64_t>(v);
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) throw JsonError("expected a string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::kArray) throw JsonError("expected an array");
  return items_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (kind_ != Kind::kObject) throw JsonError("expected an object");
  return members_;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(u >> 4) & 0xF];
          out += kHex[u & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_into(std::string& out, const Json& j) {
  switch (j.kind()) {
    case Json::Kind::kNull:
      out += "null";
      break;
    case Json::Kind::kBool:
      out += j.as_bool() ? "true" : "false";
      break;
    case Json::Kind::kNumber:
      out += format_number(j.as_number());
      break;
    case Json::Kind::kString:
      escape_into(out, j.as_string());
      break;
    case Json::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : j.items()) {
        if (!first) out += ',';
        first = false;
        dump_into(out, item);
      }
      out += ']';
      break;
    }
    case Json::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : j.members()) {
        if (!first) out += ',';
        first = false;
        escape_into(out, k);
        out += ':';
        dump_into(out, v);
      }
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError(what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of record");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void expect_word(std::string_view word) {
    for (const char c : word) expect(c);
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::string(parse_string());
      case 't':
        expect_word("true");
        return Json::boolean(true);
      case 'f':
        expect_word("false");
        return Json::boolean(false);
      case 'n':
        expect_word("null");
        return Json{};
      default: return parse_number();
    }
  }

  Json parse_object() {
    Json v = Json::object();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      next();
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.set(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return v;
  }

  Json parse_array() {
    Json v = Json::array();
    expect('[');
    skip_ws();
    if (peek() == ']') {
      next();
      return v;
    }
    while (true) {
      v.push(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = next();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // The writer only emits \u00XX for control bytes; reject
          // anything it could not have produced.
          if (code >= 0x20) fail("unsupported \\u escape");
          out += static_cast<char>(code);
          break;
        }
        default: fail("bad escape character");
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') next();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    double value = 0.0;
    const auto r =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (r.ec != std::errc{} || r.ptr != text_.data() + pos_ ||
        pos_ == start || !std::isfinite(value)) {
      pos_ = start;
      fail("bad number");
    }
    return Json::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_into(out, *this);
  return out;
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace rme::artifact
