#include "rme/artifact/replay.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <utility>

#include "rme/cli/exit_codes.hpp"
#include "rme/core/machine_presets.hpp"
#include "rme/obs/trace.hpp"
#include "rme/power/interposer.hpp"
#include "rme/power/powermon.hpp"
#include "rme/report/table.hpp"
#include "rme/sim/executor.hpp"
#include "rme/sim/faults.hpp"
#include "rme/sim/noise.hpp"

namespace rme::artifact {

bool valid_platform(const std::string& platform) {
  return platform == "i7" || platform == "gtx580";
}

std::vector<rme::sim::KernelDesc> platform_sweep_kernels(
    const std::string& platform) {
  const bool is_i7 = platform == "i7";
  std::vector<rme::sim::KernelDesc> kernels;
  // Short kernels across the Fig. 4 intensity grid, cycling duration
  // tiers — the `rme_cli faults` schedule (see bench_ablation_faults
  // for the regime rationale).  Kept in lock-step with cmd_faults so
  // artifacts and fault studies sample the same design space.
  constexpr double kTierSeconds[] = {0.018, 0.030, 0.050};
  for (const Precision p : {Precision::kSingle, Precision::kDouble}) {
    const MachineParams m =
        is_i7 ? presets::i7_950(p) : presets::gtx580(p);
    const double hi = p == Precision::kSingle ? 64.0 : 16.0;
    std::size_t tier = 0;
    for (const double intensity : sim::pow2_grid(0.25, hi)) {
      const TimePerByte sec_per_byte =
          max(m.time_per_byte, Intensity{intensity} * m.time_per_flop);
      const double words =
          kTierSeconds[tier++ % 3] / sec_per_byte.value() / word_bytes(p);
      kernels.push_back(sim::fma_load_mix(intensity, words, p));
    }
  }
  return kernels;
}

std::vector<rme::fit::EnergySample> samples_from_steps(
    const std::vector<StepRecord>& steps) {
  std::vector<rme::fit::EnergySample> samples;
  for (const StepRecord& step : steps) {
    for (const RepRecord& rep : step.reps) {
      if (rep.outlier) continue;
      samples.push_back(rme::fit::EnergySample{
          step.flops, step.bytes, Seconds{rep.seconds}, Joules{rep.joules},
          step.precision});
    }
  }
  return samples;
}

void write_steps_csv(std::ostream& os,
                     const std::vector<StepRecord>& steps) {
  os << "step,kernel,precision,rep,seconds,joules,watts,attempts,"
        "passed_qc,outlier\n";
  for (const StepRecord& step : steps) {
    for (std::size_t i = 0; i < step.reps.size(); ++i) {
      const RepRecord& rep = step.reps[i];
      os << step.index << ',' << step.kernel_name << ','
         << to_string(step.precision) << ',' << i << ','
         << format_number(rep.seconds) << ',' << format_number(rep.joules)
         << ',' << format_number(rep.watts) << ',' << rep.attempts << ','
         << (rep.passed_qc ? 1 : 0) << ',' << (rep.outlier ? 1 : 0) << '\n';
    }
  }
}

namespace {

rme::power::MeasurementSession make_session(const ArtifactHeader& header,
                                            Precision p) {
  const bool is_i7 = header.platform == "i7";
  const MachineParams m =
      is_i7 ? presets::i7_950(p) : presets::gtx580(p);
  sim::SimConfig sim_cfg;
  sim_cfg.noise = sim::NoiseModel(header.noise_seed, 0.01);
  sim::FaultProfile profile;
  profile.sample_dropout_rate = header.dropout;
  profile.spike_rate = header.spike;
  profile.spike_gain_min = 6.0;
  profile.spike_gain_max = 24.0;
  power::PowerMonConfig mon_cfg;
  mon_cfg.sample_hz = Hertz{header.sample_hz};
  power::SessionConfig ses_cfg;
  ses_cfg.repetitions = header.repetitions;
  ses_cfg.qc.enabled = header.qc;
  ses_cfg.qc.retry = header.retry;
  ses_cfg.capture_traces = true;
  return power::MeasurementSession(
      sim::Executor(m, sim_cfg),
      power::PowerMon(is_i7 ? power::atx_cpu_rails() : power::gtx580_rails(),
                      mon_cfg,
                      sim::FaultInjector(profile, header.fault_seed)),
      ses_cfg);
}

rme::fit::EnergyFit fit_steps(const std::vector<StepRecord>& steps) {
  rme::fit::EnergyFitOptions options;
  options.relative_error = true;
  return rme::fit::fit_energy_coefficients(samples_from_steps(steps),
                                           options);
}

/// Null-safe counter bump for the artifact-layer obs counters.
void count(obs::Tracer* tracer, std::string_view name, std::size_t delta) {
  if (tracer != nullptr && delta > 0) {
    tracer->add_counter(name, static_cast<std::int64_t>(delta));
  }
}

bool any_degraded(const std::vector<StepRecord>& steps) {
  for (const StepRecord& step : steps) {
    if (step.degraded) return true;
  }
  return false;
}

void add_fit_row(report::Table& t, const char* label, const FitRecord& f) {
  t.add_row({label, report::fmt(f.eps_single * 1e12, 4),
             report::fmt((f.eps_single + f.delta_double) * 1e12, 4),
             report::fmt(f.eps_mem * 1e12, 4),
             report::fmt(f.const_power, 4),
             report::fmt(f.r_squared, 6)});
}

/// Writes `steps` as CSV to `path`; returns false (with a message on
/// `err`) when the file cannot be written.
bool write_csv_file(const std::string& path,
                    const std::vector<StepRecord>& steps,
                    std::ostream& err) {
  std::ofstream csv(path, std::ios::binary);
  if (!csv) {
    err << "error: cannot open csv file '" << path << "'\n";
    return false;
  }
  write_steps_csv(csv, steps);
  csv.flush();
  if (!csv.good()) {
    err << "error: write failed on csv file '" << path << "'\n";
    return false;
  }
  return true;
}

}  // namespace

void render_session_report(std::ostream& os, const ArtifactHeader& header,
                           const std::vector<StepRecord>& steps,
                           const FitRecord& fit) {
  os << "Artifact session: platform " << header.platform << ", "
     << steps.size() << " steps x " << header.repetitions << " reps, QC "
     << (header.qc ? "on" : "off") << ", dropout "
     << report::fmt(100.0 * header.dropout, 3) << "%, spikes "
     << report::fmt(100.0 * header.spike, 3) << "%\n"
     << "Retry policy: " << header.retry.max_attempts << " attempts";
  if (header.retry.initial_backoff > Seconds{0.0}) {
    os << ", backoff " << report::fmt(header.retry.initial_backoff.value(), 4)
       << "s x" << report::fmt(header.retry.backoff_multiplier, 3);
  }
  if (header.retry.step_deadline > Seconds{0.0}) {
    os << ", deadline " << report::fmt(header.retry.step_deadline.value(), 4)
       << "s";
  }
  os << "\n";

  std::size_t attempted = 0, retried = 0, kept_degraded = 0, discarded = 0;
  std::size_t outliers = 0, deadline_exhausted = 0, max_attempts = 0;
  double backoff = 0.0;
  for (const StepRecord& step : steps) {
    attempted += step.reps_attempted;
    retried += step.reps_retried;
    kept_degraded += step.reps_kept_degraded;
    discarded += step.reps_discarded;
    outliers += step.reps_discarded_outlier;
    deadline_exhausted += step.reps_deadline_exhausted;
    backoff += step.backoff_seconds;
    for (const std::size_t a : step.attempts_per_rep) {
      if (a > max_attempts) max_attempts = a;
    }
  }
  os << "Session QC: " << attempted << " attempts, " << retried
     << " retried, " << kept_degraded << " kept degraded, " << discarded
     << " discarded, " << outliers << " MAD-rejected, " << deadline_exhausted
     << " deadline-exhausted, max " << max_attempts
     << " attempts on one rep, " << report::fmt(backoff, 4)
     << "s backoff\n";
  if (any_degraded(steps)) {
    os << "DEGRADED: at least one step exhausted its retry policy or kept "
          "failing reps (exit code 1).\n";
  }
  os << "\n";

  report::Table t({"fit", "eps_s [pJ/flop]", "eps_d [pJ/flop]",
                   "eps_mem [pJ/B]", "pi0 [W]", "R^2"});
  add_fit_row(t, "eq. (9)", fit);
  t.print(os);
  os << "\n" << fit.samples << " samples fitted\n";
}

int run_capture_sweep(const ArtifactHeader& requested,
                      const SweepOptions& options, std::ostream& out,
                      std::ostream& err) {
  ArtifactHeader header = requested;
  ReadResult existing;

  if (options.resume) {
    count(options.tracer, "artifact.resumes", 1);
    existing = read_artifact(options.artifact_path);
    if (existing.status == ScanStatus::kCorrupt) {
      count(options.tracer, "artifact.corruption_detected", 1);
      err << "error: corrupt artifact '" << options.artifact_path
          << "': " << existing.message << "\n";
      return rme::cli::kExitCorruptArtifact;
    }
    if (existing.status == ScanStatus::kTruncatedTail) {
      count(options.tracer, "artifact.torn_tails_dropped", 1);
      count(options.tracer, "artifact.torn_tail_bytes",
            existing.dropped_bytes);
      err << "warning: dropping " << existing.dropped_bytes
          << " torn tail byte(s) from '" << options.artifact_path
          << "' (last record was interrupted mid-write)\n";
      std::filesystem::resize_file(options.artifact_path,
                                   existing.valid_bytes);
    }
    if (existing.has_header) {
      // Resume re-derives the whole run from the stored header; the
      // CLI already rejects config flags next to --resume, so only the
      // platform positional can disagree here.
      if (!requested.platform.empty() &&
          requested.platform != existing.header.platform) {
        err << "error: platform '" << requested.platform
            << "' does not match artifact header platform '"
            << existing.header.platform << "' of '" << options.artifact_path
            << "'\n";
        return rme::cli::kExitUsage;
      }
      header = existing.header;
    } else if (requested.platform.empty()) {
      err << "error: artifact '" << options.artifact_path
          << "' has no header; --resume needs the platform argument to "
          << "start it\n";
      return rme::cli::kExitUsage;
    }
  } else {
    // A fresh capture replaces any stale file so the journal is a
    // clean prefix of this run.
    std::filesystem::remove(options.artifact_path);
  }

  if (!valid_platform(header.platform)) {
    err << "unknown platform '" << header.platform
        << "' (want i7 or gtx580)\n";
    return rme::cli::kExitUsage;
  }

  const std::vector<rme::sim::KernelDesc> kernels =
      platform_sweep_kernels(header.platform);
  if (existing.steps.size() > kernels.size()) {
    err << "error: artifact '" << options.artifact_path << "' has "
        << existing.steps.size() << " steps but the schedule has only "
        << kernels.size() << "\n";
    return rme::cli::kExitCorruptArtifact;
  }

  std::vector<StepRecord> steps = std::move(existing.steps);
  count(options.tracer, "artifact.steps_resumed", steps.size());
  count(options.tracer, "artifact.steps_measured",
        kernels.size() - steps.size());
  ArtifactWriter writer(options.artifact_path, existing.records,
                        options.chaos);
  if (!existing.has_header) writer.append(to_json(header));

  if (steps.size() < kernels.size()) {
    const power::MeasurementSession single =
        make_session(header, Precision::kSingle);
    const power::MeasurementSession dbl =
        make_session(header, Precision::kDouble);
    for (std::size_t i = steps.size(); i < kernels.size(); ++i) {
      const rme::sim::KernelDesc& kernel = kernels[i];
      const power::SessionResult result =
          (kernel.precision == Precision::kSingle ? single : dbl)
              .measure(kernel);
      StepRecord step = make_step_record(i, result);
      writer.append(to_json(step));
      steps.push_back(std::move(step));
    }
  }

  FitRecord fit;
  if (existing.has_fit) {
    fit = existing.fit;
  } else {
    fit = make_fit_record(fit_steps(steps), samples_from_steps(steps).size());
    writer.append(to_json(fit));
  }

  int code = any_degraded(steps) ? rme::cli::kExitDegraded
                                 : rme::cli::kExitOk;
  if (!options.csv_path.empty() &&
      !write_csv_file(options.csv_path, steps, err)) {
    code = rme::cli::kExitDegraded;
  }
  render_session_report(out, header, steps, fit);
  return code;
}

int run_replay(const ReplayOptions& options, std::ostream& out,
               std::ostream& err) {
  const ReadResult artifact = read_artifact(options.artifact_path);
  if (artifact.status == ScanStatus::kCorrupt) {
    count(options.tracer, "artifact.corruption_detected", 1);
    err << "error: corrupt artifact '" << options.artifact_path
        << "': " << artifact.message << "\n";
    return rme::cli::kExitCorruptArtifact;
  }
  if (!artifact.has_header) {
    err << "error: artifact '" << options.artifact_path
        << "' is empty or missing\n";
    return rme::cli::kExitCorruptArtifact;
  }
  const std::size_t expected =
      platform_sweep_kernels(artifact.header.platform).size();
  if (artifact.status == ScanStatus::kTruncatedTail || !artifact.has_fit ||
      artifact.steps.size() != expected) {
    err << "error: artifact '" << options.artifact_path
        << "' is incomplete (" << artifact.steps.size() << "/" << expected
        << " steps" << (artifact.has_fit ? "" : ", no fit record")
        << "); resume the sweep before replaying\n";
    return rme::cli::kExitCorruptArtifact;
  }

  count(options.tracer, "artifact.steps_replayed", artifact.steps.size());
  for (const StepRecord& step : artifact.steps) {
    count(options.tracer, "artifact.reps_replayed", step.reps.size());
  }

  FitRecord fit = artifact.fit;
  if (options.refit) {
    fit = make_fit_record(fit_steps(artifact.steps),
                          samples_from_steps(artifact.steps).size());
    report::Table t({"fit", "eps_s [pJ/flop]", "eps_d [pJ/flop]",
                     "eps_mem [pJ/B]", "pi0 [W]", "R^2"});
    add_fit_row(t, "recorded", artifact.fit);
    add_fit_row(t, "refit", fit);
    t.print(out);
    out << "\n";
  }

  int code = any_degraded(artifact.steps) ? rme::cli::kExitDegraded
                                          : rme::cli::kExitOk;
  if (!options.csv_path.empty() &&
      !write_csv_file(options.csv_path, artifact.steps, err)) {
    code = rme::cli::kExitDegraded;
  }
  render_session_report(out, artifact.header, artifact.steps, fit);
  return code;
}

}  // namespace rme::artifact
