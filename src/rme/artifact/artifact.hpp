#pragma once
// rme::artifact — versioned, crash-safe session artifacts (.rmea).
//
// An artifact is a write-ahead journal of one measurement session: a
// header record capturing everything needed to re-derive the run (the
// machine platform, fault schedule, seeds, repetition count, and retry
// policy), one step record per swept kernel (raw per-rep measurements,
// power-trace phases, and QC accounting), and a closing fit record with
// the eq. (9) coefficients.  Records use the rme::artifact framing
// (format.hpp): one checksummed JSON line each, appended and flushed
// before the session advances, so the file on disk is always a valid
// prefix of the completed run.
//
// The contract the chaos harness (tests/chaos_runner.cpp) enforces:
//
//   * every step is a pure function of (header, step index) — the
//     rme::exec derive_seed discipline — so a crashed sweep resumed
//     from its journal produces a final artifact *byte-identical* to
//     the uninterrupted run;
//   * a truncated tail is silently recoverable (the torn record is
//     re-executed); a corrupted record is detected and reported, never
//     silently mis-read (docs/REPLAY.md).

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "rme/artifact/format.hpp"
#include "rme/artifact/json.hpp"
#include "rme/fit/energy_fit.hpp"
#include "rme/power/retry.hpp"
#include "rme/power/session.hpp"
#include "rme/sim/kernel_desc.hpp"

namespace rme::artifact {

/// Artifact schema version written by this build.  Readers accept
/// exactly this version; anything else is reported as a schema
/// mismatch (docs/REPLAY.md, "Versioning").
inline constexpr std::uint64_t kSchemaVersion = 1;

/// Thrown when an artifact cannot be written (I/O failure).
class ArtifactError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The session configuration captured in the header record — enough to
/// re-derive every step without the original command line.
struct ArtifactHeader {
  std::uint64_t schema = kSchemaVersion;
  std::string platform;      ///< "i7" or "gtx580" (both precisions swept).
  std::size_t repetitions = 16;
  bool qc = true;            ///< Quality-control layer enabled.
  double dropout = 0.0;      ///< FaultProfile::sample_dropout_rate.
  double spike = 0.0;        ///< FaultProfile::spike_rate.
  std::uint64_t noise_seed = 0xA11CE;  ///< Simulator NoiseModel seed.
  std::uint64_t fault_seed = 0xFA117;  ///< FaultInjector base seed.
  // rme-lint: allow(units-suffix: raw journal field, serialized as a plain JSON number)
  double sample_hz = 128.0;  ///< PowerMon sampling rate.
  rme::power::RetryPolicy retry{};

  /// Two headers describe the same run iff every field matches.
  [[nodiscard]] bool operator==(const ArtifactHeader&) const = default;
};

/// One repetition inside a step record (the kept reps only, mirroring
/// power::SessionResult::reps).
struct RepRecord {
  double seconds = 0.0;
  double joules = 0.0;
  double watts = 0.0;
  bool capped = false;
  std::size_t attempts = 1;   ///< Runs consumed (retries + 1).
  bool passed_qc = true;
  bool outlier = false;
  // rme-lint: allow(units-suffix: raw journal field, serialized as a plain JSON number)
  double backoff_seconds = 0.0;
  bool deadline_hit = false;
  /// Raw power-trace phases [seconds, watts] of the kept attempt.
  std::vector<std::pair<double, double>> trace;
};

/// One journal step: a measured kernel with its QC accounting.
struct StepRecord {
  std::size_t index = 0;
  std::string kernel_name;
  double flops = 0.0;
  double bytes = 0.0;
  Precision precision = Precision::kSingle;
  std::vector<RepRecord> reps;
  std::vector<std::size_t> attempts_per_rep;
  std::size_t reps_attempted = 0;
  std::size_t reps_retried = 0;
  std::size_t reps_kept_degraded = 0;
  std::size_t reps_discarded = 0;
  std::size_t reps_discarded_outlier = 0;
  std::size_t dropped_samples = 0;
  std::size_t saturated_samples = 0;
  std::size_t reps_deadline_exhausted = 0;
  // rme-lint: allow(units-suffix: raw journal field, serialized as a plain JSON number)
  double backoff_seconds = 0.0;
  bool degraded = false;
};

/// The closing record: fitted eq. (9) coefficients over all steps.
struct FitRecord {
  double eps_single = 0.0;    ///< [J/flop]
  double delta_double = 0.0;  ///< [J/flop]
  double eps_mem = 0.0;       ///< [J/byte]
  double const_power = 0.0;   ///< [W]
  double r_squared = 0.0;
  std::size_t samples = 0;
};

/// Record (de)serialization.  Serialization is deterministic: member
/// order is fixed and numbers use to_chars shortest round-trip form,
/// so serialize(parse(serialize(x))) == serialize(x) byte-for-byte.
[[nodiscard]] Json to_json(const ArtifactHeader& h);
[[nodiscard]] Json to_json(const StepRecord& s);
[[nodiscard]] Json to_json(const FitRecord& f);
[[nodiscard]] ArtifactHeader header_from_json(const Json& j);
[[nodiscard]] StepRecord step_from_json(const Json& j);
[[nodiscard]] FitRecord fit_from_json(const Json& j);

/// Builds a StepRecord from a measured session result.
[[nodiscard]] StepRecord make_step_record(
    std::size_t index, const rme::power::SessionResult& result);

/// Builds a FitRecord from a fit result.
[[nodiscard]] FitRecord make_fit_record(const rme::fit::EnergyFit& fit,
                                        std::size_t samples);

/// Chaos hooks for the crash harness: after `kill_after_records`
/// appends the writer terminates the process abruptly (std::_Exit, no
/// destructors — the moral equivalent of SIGKILL at a seeded point).
/// With `tear` set, it first writes a partial prefix of the next
/// record, simulating a torn append.  Negative = disabled.
struct ChaosConfig {
  long long kill_after_records = -1;
  bool tear = false;
};

/// Append-only journal writer.  Every append frames, writes, and
/// flushes one record, then verifies the stream — an I/O failure
/// throws ArtifactError rather than continuing with a silent hole.
class ArtifactWriter {
 public:
  /// Opens `path` for append (creating it); `existing_records` is how
  /// many records the file already holds (0 for a fresh artifact) so
  /// the chaos hook counts records in the *file*, not per process.
  ArtifactWriter(std::string path, std::size_t existing_records = 0,
                 ChaosConfig chaos = {});

  void append(const Json& record);

  [[nodiscard]] std::size_t records_written() const noexcept {
    return records_;
  }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t records_ = 0;
  ChaosConfig chaos_;
};

/// Outcome of reading an artifact file.
struct ReadResult {
  ScanStatus status = ScanStatus::kOk;
  std::string message;       ///< For kCorrupt: what failed and where.
  bool has_header = false;
  ArtifactHeader header;
  std::vector<StepRecord> steps;  ///< Contiguous prefix, ordered by index.
  bool has_fit = false;
  FitRecord fit;
  std::size_t records = 0;       ///< Valid records accepted.
  std::size_t valid_bytes = 0;   ///< Prefix length covered by valid records.
  std::size_t dropped_bytes = 0; ///< Torn-tail bytes dropped (resume-safe).
};

/// Reads and validates an artifact.  Framing errors, schema mismatches,
/// malformed records, and out-of-order steps all surface as kCorrupt
/// with a message; a torn final line surfaces as kTruncatedTail with
/// every complete record intact.  A missing file reads as an empty,
/// valid artifact (no header).
[[nodiscard]] ReadResult read_artifact(const std::string& path);

/// Outcome of the coefficients-only fast path.
struct CoefficientScan {
  ScanStatus status = ScanStatus::kOk;
  std::string message;       ///< For kCorrupt: what failed and where.
  bool has_header = false;
  ArtifactHeader header;
  bool has_fit = false;
  FitRecord fit;
  std::size_t steps_skipped = 0;  ///< Step records skipped unparsed.
  std::size_t records = 0;        ///< Records accepted (incl. skipped).
};

/// Bulk-load fast path for consumers that only need the header and the
/// closing fit record (rme::serve `ingest`).  Framing checksums are
/// still verified for every record, but step payloads — the bulk of a
/// session journal, with their per-rep power traces — are recognized by
/// their deterministic serialized prefix and skipped without JSON
/// parsing, instead of parsed and discarded.  Validation matches
/// read_artifact for everything it does look at: schema version, record
/// ordering relative to the fit, and duplicate fits.
[[nodiscard]] CoefficientScan read_artifact_coefficients(
    const std::string& path);

}  // namespace rme::artifact
