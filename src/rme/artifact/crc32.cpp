#include "rme/artifact/crc32.hpp"

#include <array>

namespace rme::artifact {
namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string crc32_hex(std::string_view data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  const std::uint32_t c = crc32(data);
  std::string out(8, '0');
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(7 - i)] = kDigits[(c >> (4 * i)) & 0xFu];
  }
  return out;
}

}  // namespace rme::artifact
