#pragma once
// rme::obs — tracing spans, counters, and latency histograms.
//
// The library's hot paths (exec::ThreadPool, measure_sweep, the
// bootstrap/IRLS loops, fmm::run_variant) accept an optional
// `obs::Tracer*`.  A null tracer is the no-op sink: every instrument
// site guards on the pointer, so disabled tracing costs one branch and
// no allocation, and pinned outputs are byte-identical with tracing on
// or off.  A live Tracer records, thread-safely:
//
//   * spans       — RAII Span objects emit Chrome-trace "complete"
//                   events (name, category, start, duration, thread);
//   * counters    — named monotonic/running totals; every update also
//                   buffers a (time, value) sample so queue depths and
//                   retry counts graph as Chrome counter tracks;
//   * histograms  — log2-bucketed latency histograms (microseconds),
//                   merged across all recording threads;
//   * instants    — point-in-time markers (task exceptions, rethrows).
//
// Timestamps come exclusively from the injected Clock (clock.hpp):
// ManualClock makes traces deterministic for tests, RealClock is the
// tool/bench-layer choice.  Export lives in chrome_trace.hpp (JSON) and
// metrics.hpp (plain-text summary).

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "rme/obs/clock.hpp"

namespace rme::obs {

/// One finished span or instant marker.  Threads are identified by a
/// small stable id assigned in first-record order (0 = first thread the
/// tracer ever saw), not by the opaque std::thread::id.
struct TraceEvent {
  std::string name;
  std::string category;
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;  ///< 0 and instant=true for markers.
  std::uint32_t thread = 0;
  bool instant = false;
};

/// One buffered counter update: the running total `value` at `at_us`.
struct CounterSample {
  std::string name;
  std::int64_t at_us = 0;
  std::int64_t value = 0;
};

/// Log2-bucketed histogram of non-negative microsecond latencies.
/// Bucket b holds values in [2^(b-1), 2^b); bucket 0 holds zeros.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::int64_t value_us) noexcept;
  /// Adds every bucket/extreme of `other` into this histogram.
  void merge(const LatencyHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::int64_t min_us() const noexcept { return min_us_; }
  [[nodiscard]] std::int64_t max_us() const noexcept { return max_us_; }
  [[nodiscard]] std::int64_t total_us() const noexcept { return total_us_; }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets()
      const noexcept {
    return buckets_;
  }
  /// Upper bound (exclusive) of the bucket containing the p-quantile,
  /// 0 <= p <= 1 — a log2-resolution percentile estimate.
  [[nodiscard]] std::int64_t quantile_bound_us(double p) const noexcept;

  /// Bucket index for a value (0 for values <= 0).
  [[nodiscard]] static std::size_t bucket_of(std::int64_t value_us) noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t min_us_ = 0;
  std::int64_t max_us_ = 0;
  std::int64_t total_us_ = 0;
};

/// Everything a Tracer recorded, copied out under the lock at snapshot
/// time.  Ordered maps keep export output deterministic given the same
/// recorded operations.
struct TraceSnapshot {
  std::vector<TraceEvent> events;          ///< In completion order.
  std::vector<CounterSample> counter_samples;  ///< In update order.
  std::map<std::string, std::int64_t> counters;      ///< Final totals.
  std::map<std::string, LatencyHistogram> histograms;
  std::uint32_t threads_seen = 0;
  std::string clock_description;
};

/// Thread-safe event/counter/histogram recorder around an injected
/// Clock.  The Clock must outlive the Tracer.  All methods may be
/// called concurrently from any thread.
class Tracer {
 public:
  explicit Tracer(Clock& clock) : clock_(&clock) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Reads the injected clock (spans use this for their endpoints).
  [[nodiscard]] std::int64_t now_us() noexcept { return clock_->now_us(); }

  /// Records a finished span attributed to the calling thread.
  void record_span(std::string_view name, std::string_view category,
                   std::int64_t start_us, std::int64_t end_us);

  /// Records an instant marker attributed to the calling thread.
  void record_instant(std::string_view name, std::string_view category);

  /// Adds `delta` to the named running counter and buffers a sample of
  /// the new total at the current clock time.
  void add_counter(std::string_view name, std::int64_t delta);

  /// Records one latency observation into the named histogram.
  void record_latency(std::string_view name, std::int64_t value_us);

  /// Copies out everything recorded so far.
  [[nodiscard]] TraceSnapshot snapshot() const;

 private:
  /// Stable small id of the calling thread; assigns on first use.
  [[nodiscard]] std::uint32_t thread_id_locked();

  Clock* clock_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::vector<CounterSample> counter_samples_;
  std::map<std::string, std::int64_t, std::less<>> counters_;
  std::map<std::string, LatencyHistogram, std::less<>> histograms_;
  std::map<std::thread::id, std::uint32_t> thread_ids_;
};

/// RAII span: reads the clock at construction and records a complete
/// event (plus a latency observation under "span:<category>") at
/// destruction.  With a null tracer every operation is a no-op — this
/// is the disabled path on which instrumented code relies for zero
/// cost.  Not copyable or movable; scope it where the work happens.
class Span {
 public:
  Span(Tracer* tracer, std::string_view name, std::string_view category)
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    name_.assign(name);
    category_.assign(category);
    start_us_ = tracer_->now_us();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { close(); }

  /// Ends the span early (idempotent).
  void close() noexcept {
    if (tracer_ == nullptr) return;
    Tracer* t = tracer_;
    tracer_ = nullptr;
    try {
      const std::int64_t end_us = t->now_us();
      t->record_span(name_, category_, start_us_, end_us);
      t->record_latency("span:" + category_, end_us - start_us_);
    } catch (...) {
      // Tracing must never take down the traced computation.
    }
  }

 private:
  Tracer* tracer_;
  std::string name_;
  std::string category_;
  std::int64_t start_us_ = 0;
};

/// Classic-locale double formatting for span names and trace output —
/// immune to the global locale (see report::CsvWriter's regression).
[[nodiscard]] std::string format_double(double value, int digits = 6);

}  // namespace rme::obs
