#pragma once
// Plain-text metrics summary for rme::obs traces: final counter totals,
// per-category span statistics, and log2 latency histograms — the
// `--metrics` companion to the Chrome-trace `--trace` export.

#include <iosfwd>

#include "rme/obs/trace.hpp"

namespace rme::obs {

/// Writes a human-readable summary of `snapshot`: counters, span counts
/// and total/mean durations per category, histogram min/p50/p95/max.
/// Deterministic for a deterministic snapshot; locale-independent.
void write_metrics_summary(std::ostream& os, const TraceSnapshot& snapshot);

}  // namespace rme::obs
