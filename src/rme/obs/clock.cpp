#include "rme/obs/clock.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace rme::obs {

namespace {

/// Formats a wall-clock epoch as UTC ISO-8601 for trace metadata.
std::string iso8601_utc(std::time_t t) {
  std::tm tm{};
  if (gmtime_r(&t, &tm) == nullptr) return "unknown";
  char buf[80];  // worst-case %04d on a full-range int, per field
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec);
  return buf;
}

/// The one sanctioned wall-clock read in src/rme/: a trace-metadata
/// stamp that never feeds a model result.  Tools and benches are the
/// only constructors of RealClock (see clock.hpp).
std::time_t wall_epoch() noexcept {
  using wall = std::chrono::system_clock;  // rme-lint: allow(determinism: trace-epoch metadata stamp only; RealClock is tool/bench-layer, never a model input)
  return wall::to_time_t(wall::now());
}

class RealClock final : public Clock {
 public:
  RealClock()
      : origin_(std::chrono::steady_clock::now()), epoch_(wall_epoch()) {}

  [[nodiscard]] std::int64_t now_us() noexcept override {
    const auto delta = std::chrono::steady_clock::now() - origin_;
    return std::chrono::duration_cast<std::chrono::microseconds>(delta)
        .count();
  }

  [[nodiscard]] std::string describe() const override {
    return "steady, origin " + iso8601_utc(epoch_);
  }

 private:
  std::chrono::steady_clock::time_point origin_;
  std::time_t epoch_;
};

}  // namespace

std::unique_ptr<Clock> make_real_clock() {
  return std::make_unique<RealClock>();
}

}  // namespace rme::obs
