#pragma once
// rme::obs — injected clocks for the tracing layer.
//
// Every timestamp the observability subsystem records flows through the
// Clock interface.  Model code under src/rme/ never constructs a real
// clock: library APIs accept an obs::Tracer* (which owns no clock) and
// the *tool/bench layer* decides which clock backs it —
//
//   * ManualClock  — a deterministic, test-controlled counter.  Tests
//                    and golden comparisons use it so trace output is a
//                    pure function of the recorded operations;
//   * RealClock    — monotonic host time (steady_clock deltas) for the
//                    `--trace` / `--metrics` harness flags, constructed
//                    only by tools/ and bench/ binaries.
//
// This split is what keeps the rme::analyze `determinism` rule honest:
// wall-clock reads stay out of model code, and the one real-clock
// translation unit (clock.cpp) carries a rule-scoped, reasoned
// suppression for its trace-epoch stamp.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace rme::obs {

/// Monotonic time source for trace events, in microseconds.  The origin
/// is implementation-defined (RealClock: process start of tracing;
/// ManualClock: 0); only differences and ordering are meaningful.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since this clock's origin.  Must be
  /// monotonic non-decreasing and safe to call from any thread.
  [[nodiscard]] virtual std::int64_t now_us() noexcept = 0;

  /// Human-readable description of the time base, recorded in trace
  /// metadata (e.g. "manual", "steady, epoch 2026-08-07T...").
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Deterministic clock for tests: time moves only when told to.
/// Thread-safe; concurrent readers see the last value set/advanced.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::int64_t start_us = 0) noexcept
      : now_us_(start_us) {}

  [[nodiscard]] std::int64_t now_us() noexcept override {
    return now_us_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::string describe() const override { return "manual"; }

  /// Moves time forward by `delta_us` (negative deltas are ignored —
  /// the Clock contract is monotonic).
  void advance_us(std::int64_t delta_us) noexcept {
    if (delta_us > 0) {
      now_us_.fetch_add(delta_us, std::memory_order_relaxed);
    }
  }

 private:
  std::atomic<std::int64_t> now_us_;
};

/// Monotonic host clock (steady_clock deltas from construction, plus a
/// wall-clock epoch stamp for trace metadata).  Construct this ONLY at
/// the tool/bench layer — model code receives time through a Tracer and
/// must stay reproducible under ManualClock.
[[nodiscard]] std::unique_ptr<Clock> make_real_clock();

}  // namespace rme::obs
