#include "rme/obs/trace.hpp"

#include <algorithm>
#include <bit>
#include <iomanip>
#include <locale>
#include <sstream>

namespace rme::obs {

std::size_t LatencyHistogram::bucket_of(std::int64_t value_us) noexcept {
  if (value_us <= 0) return 0;
  return static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(value_us)));
}

void LatencyHistogram::record(std::int64_t value_us) noexcept {
  const std::int64_t v = std::max<std::int64_t>(value_us, 0);
  buckets_[std::min(bucket_of(v), kBuckets - 1)] += 1;
  if (count_ == 0) {
    min_us_ = v;
    max_us_ = v;
  } else {
    min_us_ = std::min(min_us_, v);
    max_us_ = std::max(max_us_, v);
  }
  total_us_ += v;
  count_ += 1;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  if (count_ == 0) {
    min_us_ = other.min_us_;
    max_us_ = other.max_us_;
  } else {
    min_us_ = std::min(min_us_, other.min_us_);
    max_us_ = std::max(max_us_, other.max_us_);
  }
  total_us_ += other.total_us_;
  count_ += other.count_;
}

std::int64_t LatencyHistogram::quantile_bound_us(double p) const noexcept {
  if (count_ == 0) return 0;
  const double clamped = std::clamp(p, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      clamped * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > target) {
      return b == 0 ? 0 : std::int64_t{1} << b;
    }
  }
  return max_us_;
}

std::uint32_t Tracer::thread_id_locked() {
  const auto id = std::this_thread::get_id();
  const auto [it, inserted] =
      thread_ids_.emplace(id, static_cast<std::uint32_t>(thread_ids_.size()));
  (void)inserted;
  return it->second;
}

// Observability boundary: per-event cost is bounded and paid only when
// a caller opted into --trace/--metrics; the hot-path rules measure the
// instrumented code, not the instrument.
// rme-cold: observability boundary, active only under --trace/--metrics
void Tracer::record_span(std::string_view name, std::string_view category,
                         std::int64_t start_us, std::int64_t end_us) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent e;
  e.name.assign(name);
  e.category.assign(category);
  e.start_us = start_us;
  e.duration_us = std::max<std::int64_t>(end_us - start_us, 0);
  e.thread = thread_id_locked();
  events_.push_back(std::move(e));
}

// rme-cold: observability boundary — see record_span.
void Tracer::record_instant(std::string_view name,
                            std::string_view category) {
  const std::int64_t at = now_us();
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent e;
  e.name.assign(name);
  e.category.assign(category);
  e.start_us = at;
  e.thread = thread_id_locked();
  e.instant = true;
  events_.push_back(std::move(e));
}

// rme-cold: observability boundary — see record_span.
void Tracer::add_counter(std::string_view name, std::int64_t delta) {
  const std::int64_t at = now_us();
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  std::int64_t total = delta;
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
    total = it->second;
  }
  counter_samples_.push_back(CounterSample{std::string(name), at, total});
}

// rme-cold: observability boundary — see record_span.
void Tracer::record_latency(std::string_view name, std::int64_t value_us) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), LatencyHistogram{}).first;
  }
  it->second.record(value_us);
}

TraceSnapshot Tracer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceSnapshot snap;
  snap.events = events_;
  snap.counter_samples = counter_samples_;
  snap.counters.insert(counters_.begin(), counters_.end());
  snap.histograms.insert(histograms_.begin(), histograms_.end());
  snap.threads_seen = static_cast<std::uint32_t>(thread_ids_.size());
  snap.clock_description = clock_->describe();
  return snap;
}

// rme-cold: builds trace span labels; runs only when a tracer is attached
std::string format_double(double value, int digits) {
  std::ostringstream oss;
  oss.imbue(std::locale::classic());
  oss << std::setprecision(digits) << value;
  return oss.str();
}

}  // namespace rme::obs
