#include "rme/obs/metrics.hpp"

#include <locale>
#include <map>
#include <ostream>

namespace rme::obs {

void write_metrics_summary(std::ostream& os, const TraceSnapshot& snapshot) {
  const std::locale previous = os.imbue(std::locale::classic());

  os << "== rme::obs metrics (clock: " << snapshot.clock_description
     << ", threads: " << snapshot.threads_seen << ") ==\n";

  // Span statistics per category, in name order.
  struct CategoryStats {
    std::uint64_t spans = 0;
    std::uint64_t instants = 0;
    std::int64_t total_us = 0;
  };
  std::map<std::string, CategoryStats> by_category;
  for (const TraceEvent& e : snapshot.events) {
    CategoryStats& s = by_category[e.category];
    if (e.instant) {
      s.instants += 1;
    } else {
      s.spans += 1;
      s.total_us += e.duration_us;
    }
  }
  os << "spans:\n";
  if (by_category.empty()) os << "  (none)\n";
  for (const auto& [category, s] : by_category) {
    os << "  " << category << ": " << s.spans << " spans, total "
       << s.total_us << " us";
    if (s.spans > 0) {
      os << ", mean "
         << s.total_us / static_cast<std::int64_t>(s.spans) << " us";
    }
    if (s.instants > 0) os << ", " << s.instants << " instants";
    os << "\n";
  }

  os << "counters:\n";
  if (snapshot.counters.empty()) os << "  (none)\n";
  for (const auto& [name, total] : snapshot.counters) {
    os << "  " << name << " = " << total << "\n";
  }

  os << "latency histograms (us, log2 buckets):\n";
  if (snapshot.histograms.empty()) os << "  (none)\n";
  for (const auto& [name, h] : snapshot.histograms) {
    os << "  " << name << ": count " << h.count() << ", min " << h.min_us()
       << ", p50 <= " << h.quantile_bound_us(0.50) << ", p95 <= "
       << h.quantile_bound_us(0.95) << ", max " << h.max_us() << ", total "
       << h.total_us() << "\n";
  }

  os.imbue(previous);
}

}  // namespace rme::obs
