#include "rme/obs/chrome_trace.hpp"

#include <cstdio>
#include <fstream>
#include <locale>
#include <ostream>

namespace rme::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& os, const TraceSnapshot& snapshot) {
  // The global locale must not leak separators into the JSON numbers.
  const std::locale previous = os.imbue(std::locale::classic());

  os << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  for (const TraceEvent& e : snapshot.events) {
    comma();
    if (e.instant) {
      os << R"({"name":")" << json_escape(e.name) << R"(","cat":")"
         << json_escape(e.category) << R"(","ph":"i","s":"t","ts":)"
         << e.start_us << R"(,"pid":1,"tid":)" << e.thread << "}";
    } else {
      os << R"({"name":")" << json_escape(e.name) << R"(","cat":")"
         << json_escape(e.category) << R"(","ph":"X","ts":)" << e.start_us
         << R"(,"dur":)" << e.duration_us << R"(,"pid":1,"tid":)" << e.thread
         << "}";
    }
  }
  for (const CounterSample& c : snapshot.counter_samples) {
    comma();
    os << R"({"name":")" << json_escape(c.name)
       << R"(","ph":"C","ts":)" << c.at_us << R"(,"pid":1,"args":{"value":)"
       << c.value << "}}";
  }

  os << "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{"
     << R"("tool":"rme::obs","clock":")"
     << json_escape(snapshot.clock_description) << R"(","threads":)"
     << snapshot.threads_seen << "}}\n";

  os.imbue(previous);
}

bool write_chrome_trace_file(const std::string& path, const Tracer& tracer) {
  std::ofstream out(path);
  if (!out.good()) return false;
  write_chrome_trace(out, tracer.snapshot());
  return out.good();
}

}  // namespace rme::obs
