#pragma once
// Chrome trace-event export for rme::obs traces.
//
// Writes the JSON object form of the Trace Event Format — loadable in
// chrome://tracing and Perfetto (ui.perfetto.dev) — from a Tracer
// snapshot:
//
//   * spans     -> "ph":"X" complete events (ts/dur in microseconds);
//   * instants  -> "ph":"i" instant events (thread scope);
//   * counters  -> "ph":"C" counter events, one per buffered sample,
//                  so queue depths and retry totals render as tracks.
//
// All numeric output is locale-independent (classic locale), and the
// writer emits deterministic bytes for a deterministic snapshot (same
// events in the same order — what ManualClock-driven tests pin).

#include <iosfwd>
#include <string>

#include "rme/obs/trace.hpp"

namespace rme::obs {

/// Escapes a string for inclusion in a JSON string literal (quotes,
/// backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Writes `snapshot` as one Chrome trace-event JSON object.
void write_chrome_trace(std::ostream& os, const TraceSnapshot& snapshot);

/// Convenience: snapshots `tracer` and writes it to `path`.  Returns
/// false (with no throw) when the file cannot be opened.
[[nodiscard]] bool write_chrome_trace_file(const std::string& path,
                                           const Tracer& tracer);

}  // namespace rme::obs
