#pragma once
// rme::serve — per-connection arena allocation.
//
// Every connection the daemon serves owns one Arena: request frames are
// copied into arena storage, handed to the protocol layer as views, and
// the arena is reset (not freed) between frames.  Steady-state serving
// therefore performs zero per-request heap allocation for frame I/O —
// the block list grows to the largest frame the connection ever saw and
// is reused from then on.  The high-water mark is exported through the
// server stats so capacity planning is observable (docs/SERVE.md).
//
// This is a bump allocator: alloc() never frees, reset() rewinds every
// block.  It is deliberately not thread-safe — a connection is served
// by one thread at a time (request *batches* parallelize inside
// rme::exec, not across the arena).

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

namespace rme::serve {

class Arena {
 public:
  /// Initial block size; subsequent blocks double until a frame fits.
  explicit Arena(std::size_t initial_bytes = 4096)
      : block_bytes_(initial_bytes == 0 ? 1 : initial_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `n` bytes (uninitialized).  Grows the block list
  /// when the current block cannot hold the request.
  [[nodiscard]] char* alloc(std::size_t n) {
    if (current_ >= blocks_.size() ||
        blocks_[current_].size - used_ < n) {
      advance_to_fit(n);
    }
    char* p = blocks_[current_].data.get() + used_;
    used_ += n;
    live_ += n;
    if (live_ > high_water_) high_water_ = live_;
    return p;
  }

  /// Copies `text` into arena storage and returns a view of the copy
  /// (valid until the next reset()).
  [[nodiscard]] std::string_view intern(std::string_view text) {
    char* p = alloc(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) p[i] = text[i];
    return std::string_view(p, text.size());
  }

  /// Rewinds every block for reuse; capacity is retained.
  void reset() noexcept {
    current_ = 0;
    used_ = 0;
    live_ = 0;
  }

  /// Largest number of live bytes ever held between resets.
  [[nodiscard]] std::size_t high_water_bytes() const noexcept {
    return high_water_;
  }

  /// Total capacity across all blocks (allocated once, then reused).
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  void advance_to_fit(std::size_t n) {
    // Move to the next existing block that fits, else append one that
    // does (doubling keeps the block count logarithmic in frame size).
    while (current_ + 1 < blocks_.size()) {
      ++current_;
      used_ = 0;
      if (blocks_[current_].size >= n) return;
    }
    std::size_t size = blocks_.empty() ? block_bytes_
                                       : blocks_.back().size * 2;
    while (size < n) size *= 2;
    blocks_.push_back(Block{std::make_unique<char[]>(size), size});
    current_ = blocks_.size() - 1;
    used_ = 0;
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;     ///< Index of the block being bumped.
  std::size_t used_ = 0;        ///< Bytes used in the current block.
  std::size_t live_ = 0;        ///< Live bytes since the last reset.
  std::size_t high_water_ = 0;
};

}  // namespace rme::serve
