#include "rme/serve/protocol.hpp"

#include <cmath>
#include <string>
#include <utility>

namespace rme::serve {

namespace {

using artifact::JsonError;

/// Wraps Json lookups so shape errors surface as kBadRequest with the
/// offending path instead of a raw JsonError.
const Json& member(const Json& j, std::string_view key,
                   const std::string& where) {
  if (!j.is_object() || !j.has(key)) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        where + " is missing required field '" +
                            std::string(key) + "'");
  }
  return j.at(key);
}

double number_field(const Json& j, std::string_view key,
                    const std::string& where) {
  try {
    return member(j, key, where).as_number();
  } catch (const JsonError&) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        where + " field '" + std::string(key) +
                            "' must be a finite number");
  }
}

std::string string_field(const Json& j, std::string_view key,
                         const std::string& where) {
  try {
    return member(j, key, where).as_string();
  } catch (const JsonError&) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        where + " field '" + std::string(key) +
                            "' must be a string");
  }
}

Precision precision_field(const Json& j, const std::string& where) {
  if (!j.has("precision")) return Precision::kDouble;
  const std::string p = string_field(j, "precision", where);
  if (p == "single") return Precision::kSingle;
  if (p == "double") return Precision::kDouble;
  throw ProtocolError(ErrorCode::kBadRequest,
                      where + " precision must be 'single' or 'double', got '" +
                          p + "'");
}

/// One batch entry: either explicit {flops, bytes} or a
/// {"mix":{"intensity":I,"words":N}} microbenchmark spec.
sim::KernelDesc parse_descriptor(const Json& j, std::size_t index) {
  // rme-lint: allow(alloc-in-hot-path, format-in-hot-path: SSO-sized context label, built once per descriptor)
  const std::string where = "batch[" + std::to_string(index) + "]";
  if (!j.is_object()) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        where + " must be an object");
  }
  const Precision precision = precision_field(j, where);
  sim::KernelDesc desc;
  if (j.has("mix")) {
    const Json& mix = j.at("mix");
    if (!mix.is_object()) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          where + " mix must be an object");
    }
    const double intensity = number_field(mix, "intensity", where + ".mix");
    const double words = number_field(mix, "words", where + ".mix");
    if (!(intensity > 0.0)) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          where + ".mix intensity must be > 0");
    }
    if (!(words > 0.0)) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          where + ".mix words must be > 0");
    }
    desc = sim::fma_load_mix(intensity, words, precision);
  } else {
    desc.flops = number_field(j, "flops", where);
    desc.bytes = number_field(j, "bytes", where);
    desc.precision = precision;
    if (!(desc.flops >= 0.0)) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          where + " flops must be >= 0");
    }
    if (!(desc.bytes > 0.0)) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          where + " bytes must be > 0");
    }
  }
  if (j.has("name")) {
    desc.name = string_field(j, "name", where);
  } else if (desc.name.empty()) {
    // rme-lint: allow(format-in-hot-path: default name for unnamed entries)
    desc.name = "k" + std::to_string(index);
  }
  return desc;
}

std::vector<sim::KernelDesc> parse_batch(const Json& request,
                                         std::string_view key,
                                         std::size_t max_batch) {
  const Json& batch = member(request, key, "request");
  if (!batch.is_array()) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "request field '" + std::string(key) +
                            "' must be an array");
  }
  const std::vector<Json>& items = batch.items();
  if (items.empty()) {
    throw ProtocolError(ErrorCode::kEmptyBatch,
                        "'" + std::string(key) + "' must not be empty");
  }
  if (items.size() > max_batch) {
    throw ProtocolError(
        ErrorCode::kOverCapacity,
        "'" + std::string(key) + "' has " + std::to_string(items.size()) +
            " entries; this server accepts at most " +
            std::to_string(max_batch) + " per request");
  }
  std::vector<sim::KernelDesc> out;
  out.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    out.push_back(parse_descriptor(items[i], i));
  }
  return out;
}

std::optional<double> optional_edit(const Json& edits, std::string_view key,
                                    bool positive_required) {
  if (!edits.has(key)) return std::nullopt;
  double value = 0.0;
  try {
    value = edits.at(key).as_number();
  } catch (const JsonError&) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "edits field '" + std::string(key) +
                            "' must be a finite number");
  }
  if (positive_required ? !(value > 0.0) : !(value >= 0.0)) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "edits field '" + std::string(key) + "' must be " +
                            (positive_required ? "> 0" : ">= 0"));
  }
  return value;
}

}  // namespace

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownOp: return "unknown_op";
    case ErrorCode::kUnknownMachine: return "unknown_machine";
    case ErrorCode::kEmptyBatch: return "empty_batch";
    case ErrorCode::kOverCapacity: return "over_capacity";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kIngestFailed: return "ingest_failed";
  }
  return "unknown";
}

const char* to_string(Op op) noexcept {
  switch (op) {
    case Op::kPredict: return "predict";
    case Op::kRank: return "rank";
    case Op::kWhatif: return "whatif";
    case Op::kIngest: return "ingest";
    case Op::kStats: return "stats";
    case Op::kShutdown: return "shutdown";
  }
  return "unknown";
}

const char* to_string(RankBy by) noexcept {
  switch (by) {
    case RankBy::kEnergy: return "energy";
    case RankBy::kTime: return "time";
    case RankBy::kEdp: return "edp";
    case RankBy::kGreenup: return "greenup";
  }
  return "unknown";
}

Request parse_request(std::string_view line, std::size_t max_batch) {
  Json frame;
  try {
    frame = Json::parse(line);
  } catch (const JsonError& err) {
    throw ProtocolError(ErrorCode::kParseError, err.what());
  }
  if (!frame.is_object()) {
    throw ProtocolError(ErrorCode::kParseError,
                        "request frame must be a JSON object");
  }
  return parse_frame(frame, max_batch);
}

Request parse_frame(const Json& frame, std::size_t max_batch) {
  Request request;
  if (frame.has("id")) {
    request.has_id = true;
    request.id = frame.at("id");
  }

  const std::string op = string_field(frame, "op", "request");
  if (op == "predict") {
    request.op = Op::kPredict;
  } else if (op == "rank") {
    request.op = Op::kRank;
  } else if (op == "whatif") {
    request.op = Op::kWhatif;
  } else if (op == "ingest") {
    request.op = Op::kIngest;
  } else if (op == "stats") {
    request.op = Op::kStats;
    return request;
  } else if (op == "shutdown") {
    request.op = Op::kShutdown;
    return request;
  } else {
    throw ProtocolError(ErrorCode::kUnknownOp,
                        "unknown op '" + op +
                            "' (want predict, rank, whatif, ingest, stats, "
                            "or shutdown)");
  }

  if (request.op == Op::kIngest) {
    request.ingest_name = string_field(frame, "name", "request");
    request.ingest_artifact = string_field(frame, "artifact", "request");
    if (request.ingest_name.empty()) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          "ingest name must not be empty");
    }
    if (request.ingest_artifact.empty()) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          "ingest artifact path must not be empty");
    }
    return request;
  }

  request.machine = string_field(frame, "machine", "request");

  if (request.op == Op::kRank) {
    request.batch = parse_batch(frame, "variants", max_batch);
    if (frame.has("by")) {
      const std::string by = string_field(frame, "by", "request");
      if (by == "energy") {
        request.rank_by = RankBy::kEnergy;
      } else if (by == "time") {
        request.rank_by = RankBy::kTime;
      } else if (by == "edp") {
        request.rank_by = RankBy::kEdp;
      } else if (by == "greenup") {
        request.rank_by = RankBy::kGreenup;
      } else {
        throw ProtocolError(ErrorCode::kBadRequest,
                            "rank 'by' must be energy, time, edp, or "
                            "greenup, got '" + by + "'");
      }
    }
    return request;
  }

  request.batch = parse_batch(frame, "batch", max_batch);

  if (request.op == Op::kWhatif) {
    const Json& edits = member(frame, "edits", "request");
    if (!edits.is_object()) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          "request field 'edits' must be an object");
    }
    for (const auto& [key, value] : edits.members()) {
      (void)value;
      if (key != "eps_flop_pj" && key != "eps_mem_pj" && key != "pi0_w" &&
          key != "gflops" && key != "gbs") {
        throw ProtocolError(ErrorCode::kBadRequest,
                            "unknown edits field '" + key +
                                "' (want eps_flop_pj, eps_mem_pj, pi0_w, "
                                "gflops, gbs)");
      }
    }
    request.edits.eps_flop_pj = optional_edit(edits, "eps_flop_pj", true);
    request.edits.eps_mem_pj = optional_edit(edits, "eps_mem_pj", true);
    request.edits.pi0_w = optional_edit(edits, "pi0_w", false);
    request.edits.gflops = optional_edit(edits, "gflops", true);
    request.edits.gbs = optional_edit(edits, "gbs", true);
    if (!request.edits.any()) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          "edits must set at least one of eps_flop_pj, "
                          "eps_mem_pj, pi0_w, gflops, gbs");
    }
  }
  return request;
}

Json error_response(const ProtocolError& error, const Json* id) {
  Json response = Json::object();
  response.set("ok", Json::boolean(false));
  if (id != nullptr) response.set("id", *id);
  Json detail = Json::object();
  detail.set("code", Json::string(to_string(error.code())));
  detail.set("message", Json::string(error.what()));
  response.set("error", std::move(detail));
  return response;
}

Json overloaded_response(std::int64_t retry_after_ms) {
  Json response = Json::object();
  response.set("ok", Json::boolean(false));
  Json detail = Json::object();
  detail.set("code", Json::string(to_string(ErrorCode::kOverloaded)));
  detail.set("message",
             Json::string("request queue is full; retry after the hint"));
  response.set("error", std::move(detail));
  response.set("retry_after_ms",
               Json::number(static_cast<double>(retry_after_ms)));
  return response;
}

Json ok_response_head(Op op, const Request& request,
                      std::uint64_t generation) {
  Json response = Json::object();
  response.set("ok", Json::boolean(true));
  response.set("op", Json::string(to_string(op)));
  if (request.has_id) response.set("id", request.id);
  response.set("gen", Json::number(static_cast<double>(generation)));
  return response;
}

}  // namespace rme::serve
