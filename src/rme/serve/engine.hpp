#pragma once
// rme::serve — the model engine behind the daemon.
//
// The Engine owns the machine registry: the five paper presets are
// loaded once at construction, and `ingest` installs fitted coefficient
// sets from .rmea artifacts at runtime.  The registry is *generation
// versioned*: every successful ingest bumps a monotonic generation
// counter, every response carries the generation it was computed
// against (`gen`), and cached machine lookups are invalidated by the
// bump — a client that pins a generation can detect that a reload
// happened between two of its requests.
//
// Determinism contract (tests/test_serve.cpp): handle() is a pure
// function of (registry state, frame bytes).  Batches evaluate through
// core::evaluate_batch — the SoA fast path, bit-identical to the scalar
// model by construction — and row serialization is a pure function of
// the batch index (inlined for small batches, exec::parallel_map above
// kParallelRowThreshold), so responses are byte-identical at any --jobs
// value and `predict` numbers are bit-equal to direct
// predict_time/predict_energy calls (responses serialize through
// artifact::format_number, the shortest-round-trip form).  Non-finite
// computed values (overflowed EDP products, degenerate ratios)
// serialize as JSON null via wire_number — a malformed frame from a
// degenerate request is structurally impossible.

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "rme/artifact/json.hpp"
#include "rme/core/batch.hpp"
#include "rme/core/machine.hpp"
#include "rme/obs/trace.hpp"
#include "rme/serve/protocol.hpp"

namespace rme::serve {

/// Engine configuration; jobs follows the exec convention (0 = hardware
/// concurrency, 1 = inline).
struct EngineOptions {
  unsigned jobs = 1;             ///< Parallelism *within* one batch.
  std::size_t max_batch = 1024;  ///< Largest accepted batch/variants.
  obs::Tracer* tracer = nullptr;  ///< Optional; null = no-op sink.
};

/// A point-in-time copy of the engine counters (the `stats` endpoint).
struct EngineStats {
  std::uint64_t generation = 0;
  std::uint64_t requests = 0;      ///< Frames handled (incl. rejected).
  std::uint64_t errors = 0;        ///< Frames answered with an error.
  std::uint64_t queue_stalls = 0;  ///< Overload rejections (server-fed).
  std::uint64_t batch_items = 0;   ///< Descriptors evaluated in total.
  std::vector<std::string> machines;  ///< Registry keys, sorted.
};

/// The request handler.  Thread-safe; one instance serves every
/// connection of a daemon process.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Handles one request frame and returns the response document.
  /// Never throws for malformed input — protocol violations become
  /// structured error responses so the connection stays serviceable.
  [[nodiscard]] Json handle(std::string_view frame);

  /// True once a `shutdown` frame was handled; the transport loop
  /// drains and exits when it sees this.
  [[nodiscard]] bool shutdown_requested() const;

  /// Server-side hook: counts one backpressure rejection (the server
  /// sheds load before the engine ever sees the frame).
  void note_queue_stall();

  [[nodiscard]] EngineStats stats() const;

 private:
  struct Entry {
    MachineParams params;
    MachineEval eval;  ///< Derived scalars, cached once at install time.
    std::uint64_t generation = 1;  ///< Generation that installed it.
  };

  /// Builds a registry entry, extracting the MachineEval cache so the
  /// per-request hot path never re-derives balance points.
  [[nodiscard]] static Entry make_entry(MachineParams params,
                                        std::uint64_t generation);

  /// Registry lookup; copies out under the lock.  Throws ProtocolError
  /// (kUnknownMachine) naming the registered keys.
  [[nodiscard]] Entry find_machine(const std::string& name) const;

  /// Rebuilds the ", "-joined registry key list used by find_machine's
  /// error message.  Called with mutex_ held (or from the constructor),
  /// once per registry mutation — lookups misses then serve the
  /// precomputed text instead of re-joining the keys per miss.
  void rebuild_known_machines_locked();

  [[nodiscard]] Json dispatch(const Request& request);
  [[nodiscard]] Json do_predict(const Request& request);
  [[nodiscard]] Json do_rank(const Request& request);
  [[nodiscard]] Json do_whatif(const Request& request);
  [[nodiscard]] Json do_ingest(const Request& request);
  [[nodiscard]] Json do_stats(const Request& request);
  [[nodiscard]] Json reject(const ProtocolError& error, const Json* id);

  [[nodiscard]] std::uint64_t current_generation() const;

  EngineOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> machines_;
  std::string known_machines_;  ///< ", "-joined keys, rebuilt on ingest.
  std::uint64_t generation_ = 1;
  std::uint64_t requests_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t queue_stalls_ = 0;
  std::uint64_t batch_items_ = 0;
  bool shutdown_ = false;
};

}  // namespace rme::serve
