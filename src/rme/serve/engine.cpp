#include "rme/serve/engine.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "rme/artifact/artifact.hpp"
#include "rme/core/machine_presets.hpp"
#include "rme/core/model.hpp"
#include "rme/core/units.hpp"
#include "rme/exec/pool.hpp"
#include "rme/fit/energy_fit.hpp"

namespace rme::serve {

namespace {

using artifact::JsonError;

/// One evaluated descriptor: the full T/E/P readout of the model.
Json predict_row(const MachineParams& m, const sim::KernelDesc& desc) {
  const KernelProfile profile = desc.profile();
  const double intensity = profile.intensity();
  const TimeBreakdown t = predict_time(m, profile);
  const EnergyBreakdown e = predict_energy(m, profile);
  const Watts average_power = e.total_joules / t.total_seconds;

  Json row = Json::object();
  row.set("name", Json::string(desc.name));
  row.set("precision", Json::string(to_string(desc.precision)));
  row.set("flops", Json::number(desc.flops));
  row.set("bytes", Json::number(desc.bytes));
  row.set("intensity", Json::number(intensity));
  row.set("seconds", Json::number(t.total_seconds.value()));
  row.set("joules", Json::number(e.total_joules.value()));
  row.set("watts", Json::number(average_power.value()));
  row.set("flops_joules", Json::number(e.flops_joules.value()));
  row.set("mem_joules", Json::number(e.mem_joules.value()));
  row.set("const_joules", Json::number(e.const_joules.value()));
  row.set("time_bound", Json::string(to_string(t.bound())));
  row.set("energy_bound", Json::string(to_string(energy_bound(m, intensity))));
  row.set("disagree",
          Json::boolean(classifications_disagree(m, intensity)));
  row.set("speed", Json::number(normalized_speed(m, intensity)));
  row.set("efficiency", Json::number(normalized_efficiency(m, intensity)));
  return row;
}

/// The derived-quantity summary used by `whatif` to show what an edit
/// did to the machine's character (balance points move, peaks move).
Json machine_summary(const MachineParams& m) {
  Json summary = Json::object();
  summary.set("gflops", Json::number(m.peak_flops().value() / kGiga));
  summary.set("gbs", Json::number(m.peak_bandwidth().value() / kGiga));
  summary.set("eps_flop_pj",
              Json::number(m.energy_per_flop.value() / kPico));
  summary.set("eps_mem_pj", Json::number(m.energy_per_byte.value() / kPico));
  summary.set("pi0_w", Json::number(m.const_power.value()));
  summary.set("b_tau", Json::number(m.time_balance()));
  summary.set("b_eps", Json::number(m.energy_balance()));
  summary.set("b_eps_fixed", Json::number(m.balance_fixed_point()));
  return summary;
}

/// Applies whatif edits; peaks and energies replace wholesale.
MachineParams apply_edits(const MachineParams& base,
                          const MachineEdits& edits) {
  MachineParams edited = base;
  edited.name = base.name + " (edited)";
  if (edits.gflops) {
    edited.time_per_flop = seconds_per_flop_from_gflops(*edits.gflops);
  }
  if (edits.gbs) {
    edited.time_per_byte = seconds_per_byte_from_gbs(*edits.gbs);
  }
  if (edits.eps_flop_pj) {
    edited.energy_per_flop = picojoules_per_flop(*edits.eps_flop_pj);
  }
  if (edits.eps_mem_pj) {
    edited.energy_per_byte = picojoules_per_byte(*edits.eps_mem_pj);
  }
  if (edits.pi0_w) {
    edited.const_power = watts(*edits.pi0_w);
  }
  return edited;
}

}  // namespace

Engine::Engine(EngineOptions options) : options_(options) {
  machines_["fermi"] = Entry{presets::fermi_table2(), 1};
  machines_["gtx580-sp"] = Entry{presets::gtx580(Precision::kSingle), 1};
  machines_["gtx580-dp"] = Entry{presets::gtx580(Precision::kDouble), 1};
  machines_["i7-sp"] = Entry{presets::i7_950(Precision::kSingle), 1};
  machines_["i7-dp"] = Entry{presets::i7_950(Precision::kDouble), 1};
  rebuild_known_machines_locked();
}

void Engine::rebuild_known_machines_locked() {
  known_machines_.clear();
  for (const auto& [key, entry] : machines_) {
    (void)entry;
    if (!known_machines_.empty()) known_machines_ += ", ";
    known_machines_ += key;
  }
}

// rme-hot: every wire request funnels through here; p99 latency budget
Json Engine::handle(std::string_view frame) {
  obs::Span request_span(options_.tracer, "request", "serve");
  {
    // rme-lint: allow(lock-in-hot-path: O(1) request-counter bump)
    std::lock_guard<std::mutex> lock(mutex_);
    requests_ += 1;
  }
  if (options_.tracer != nullptr) {
    options_.tracer->add_counter("serve.requests", 1);
  }

  Json document;
  try {
    document = Json::parse(frame);
  } catch (const JsonError& err) {
    return reject(ProtocolError(ErrorCode::kParseError, err.what()), nullptr);
  }
  if (!document.is_object()) {
    return reject(ProtocolError(ErrorCode::kParseError,
                                "request frame must be a JSON object"),
                  nullptr);
  }
  const Json* id = document.has("id") ? &document.at("id") : nullptr;
  try {
    const Request request = parse_frame(document, options_.max_batch);
    const char* op_name = to_string(request.op);
    obs::Span op_span(options_.tracer, op_name,
                      std::string("serve.") + op_name);
    return dispatch(request);
  } catch (const ProtocolError& err) {
    return reject(err, id);
  }
}

Json Engine::dispatch(const Request& request) {
  switch (request.op) {
    case Op::kPredict: return do_predict(request);
    case Op::kRank: return do_rank(request);
    case Op::kWhatif: return do_whatif(request);
    case Op::kIngest: return do_ingest(request);
    case Op::kStats: return do_stats(request);
    case Op::kShutdown: {
      std::uint64_t generation = 0;
      {
        // rme-lint: allow(lock-in-hot-path: drain flag; once per lifetime)
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
        generation = generation_;
      }
      Json response = ok_response_head(Op::kShutdown, request, generation);
      response.set("draining", Json::boolean(true));
      return response;
    }
  }
  throw ProtocolError(ErrorCode::kUnknownOp, "unhandled op");
}

Json Engine::do_predict(const Request& request) {
  const Entry entry = find_machine(request.machine);
  {
    // rme-lint: allow(lock-in-hot-path: O(1) batch-counter bump)
    std::lock_guard<std::mutex> lock(mutex_);
    batch_items_ += request.batch.size();
  }
  if (options_.tracer != nullptr) {
    options_.tracer->add_counter(
        "serve.batch_items", static_cast<std::int64_t>(request.batch.size()));
  }
  std::vector<Json> rows = exec::parallel_map(
      request.batch.size(),
      [&](std::size_t i) { return predict_row(entry.params, request.batch[i]); },
      options_.jobs, options_.tracer);

  Json response =
      ok_response_head(Op::kPredict, request, current_generation());
  response.set("machine", Json::string(request.machine));
  Json results = Json::array();
  for (Json& row : rows) results.push(std::move(row));
  response.set("results", std::move(results));
  return response;
}

Json Engine::do_rank(const Request& request) {
  const Entry entry = find_machine(request.machine);
  {
    // rme-lint: allow(lock-in-hot-path: O(1) batch-counter bump)
    std::lock_guard<std::mutex> lock(mutex_);
    batch_items_ += request.batch.size();
  }

  struct Scored {
    Seconds time;
    Joules energy;
  };
  const std::vector<Scored> scored = exec::parallel_map(
      request.batch.size(),
      [&](std::size_t i) {
        const KernelProfile profile = request.batch[i].profile();
        return Scored{predict_time(entry.params, profile).total_seconds,
                      predict_energy(entry.params, profile).total_joules};
      },
      options_.jobs, options_.tracer);

  // Speedup/greenup are relative to the *first* variant as submitted —
  // the client's baseline — not to the eventual winner.
  const Scored baseline = scored.front();
  std::vector<std::size_t> order(scored.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     switch (request.rank_by) {
                       case RankBy::kTime:
                         return scored[a].time < scored[b].time;
                       case RankBy::kEdp:
                         return scored[a].time * scored[a].energy <
                                scored[b].time * scored[b].energy;
                       case RankBy::kEnergy:
                       case RankBy::kGreenup:
                         // Descending greenup E0/Ei == ascending Ei.
                         return scored[a].energy < scored[b].energy;
                     }
                     return a < b;
                   });

  Json response = ok_response_head(Op::kRank, request, current_generation());
  response.set("machine", Json::string(request.machine));
  response.set("by", Json::string(to_string(request.rank_by)));
  response.set("baseline", Json::string(request.batch.front().name));
  Json ranked = Json::array();
  for (std::size_t position = 0; position < order.size(); ++position) {
    const std::size_t i = order[position];
    Json row = Json::object();
    row.set("rank", Json::number(static_cast<double>(position + 1)));
    row.set("name", Json::string(request.batch[i].name));
    row.set("seconds", Json::number(scored[i].time.value()));
    row.set("joules", Json::number(scored[i].energy.value()));
    row.set("edp", Json::number((scored[i].time * scored[i].energy).value()));
    row.set("speedup", Json::number(baseline.time / scored[i].time));
    row.set("greenup", Json::number(baseline.energy / scored[i].energy));
    ranked.push(std::move(row));
  }
  response.set("ranked", std::move(ranked));
  return response;
}

Json Engine::do_whatif(const Request& request) {
  const Entry entry = find_machine(request.machine);
  {
    // rme-lint: allow(lock-in-hot-path: O(1) batch-counter bump)
    std::lock_guard<std::mutex> lock(mutex_);
    batch_items_ += request.batch.size();
  }
  const MachineParams edited = apply_edits(entry.params, request.edits);

  struct Delta {
    Seconds base_time;
    Joules base_energy;
    Seconds edited_time;
    Joules edited_energy;
  };
  const std::vector<Delta> deltas = exec::parallel_map(
      request.batch.size(),
      [&](std::size_t i) {
        const KernelProfile profile = request.batch[i].profile();
        return Delta{predict_time(entry.params, profile).total_seconds,
                     predict_energy(entry.params, profile).total_joules,
                     predict_time(edited, profile).total_seconds,
                     predict_energy(edited, profile).total_joules};
      },
      options_.jobs, options_.tracer);

  Json response =
      ok_response_head(Op::kWhatif, request, current_generation());
  response.set("machine", Json::string(request.machine));
  response.set("base", machine_summary(entry.params));
  response.set("edited", machine_summary(edited));
  Json kernels = Json::array();
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const Delta& d = deltas[i];
    Json row = Json::object();
    row.set("name", Json::string(request.batch[i].name));
    row.set("base_seconds", Json::number(d.base_time.value()));
    row.set("base_joules", Json::number(d.base_energy.value()));
    row.set("edited_seconds", Json::number(d.edited_time.value()));
    row.set("edited_joules", Json::number(d.edited_energy.value()));
    row.set("speedup", Json::number(d.base_time / d.edited_time));
    row.set("greenup", Json::number(d.base_energy / d.edited_energy));
    kernels.push(std::move(row));
  }
  response.set("kernels", std::move(kernels));
  return response;
}

// rme-cold: control-plane op; artifact ingest is file I/O by design
Json Engine::do_ingest(const Request& request) {
  const artifact::CoefficientScan scan =
      artifact::read_artifact_coefficients(request.ingest_artifact);
  if (scan.status == artifact::ScanStatus::kCorrupt) {
    throw ProtocolError(ErrorCode::kIngestFailed,
                        "corrupt artifact: " + scan.message);
  }
  if (!scan.has_header) {
    throw ProtocolError(ErrorCode::kIngestFailed,
                        "artifact '" + request.ingest_artifact +
                            "' is missing or empty");
  }
  if (!scan.has_fit) {
    throw ProtocolError(ErrorCode::kIngestFailed,
                        "artifact has no fit record; run the sweep to "
                        "completion before ingesting");
  }

  MachineParams peaks_single;
  MachineParams peaks_double;
  if (scan.header.platform == "i7") {
    peaks_single = presets::i7_950(Precision::kSingle);
    peaks_double = presets::i7_950(Precision::kDouble);
  } else if (scan.header.platform == "gtx580") {
    peaks_single = presets::gtx580(Precision::kSingle);
    peaks_double = presets::gtx580(Precision::kDouble);
  } else {
    throw ProtocolError(ErrorCode::kIngestFailed,
                        "unknown artifact platform '" + scan.header.platform +
                            "' (want i7 or gtx580)");
  }

  fit::EnergyCoefficients coefficients;
  coefficients.eps_single = EnergyPerFlop{scan.fit.eps_single};
  coefficients.delta_double = EnergyPerFlop{scan.fit.delta_double};
  coefficients.eps_mem = EnergyPerByte{scan.fit.eps_mem};
  coefficients.const_power = Watts{scan.fit.const_power};

  MachineParams fitted_single =
      coefficients.to_machine(peaks_single, Precision::kSingle);
  MachineParams fitted_double =
      coefficients.to_machine(peaks_double, Precision::kDouble);
  fitted_single.name =
      request.ingest_name + "-sp (fitted on " + scan.header.platform + ")";
  fitted_double.name =
      request.ingest_name + "-dp (fitted on " + scan.header.platform + ")";

  std::uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    generation_ += 1;
    generation = generation_;
    machines_[request.ingest_name + "-sp"] =
        Entry{std::move(fitted_single), generation};
    machines_[request.ingest_name + "-dp"] =
        Entry{std::move(fitted_double), generation};
    rebuild_known_machines_locked();
  }
  if (options_.tracer != nullptr) {
    options_.tracer->add_counter("serve.ingests", 1);
  }

  Json response = ok_response_head(Op::kIngest, request, generation);
  Json installed = Json::array();
  installed.push(Json::string(request.ingest_name + "-sp"));
  installed.push(Json::string(request.ingest_name + "-dp"));
  response.set("installed", std::move(installed));
  response.set("platform", Json::string(scan.header.platform));
  response.set("r_squared", Json::number(scan.fit.r_squared));
  response.set("fit_samples",
               Json::number(static_cast<double>(scan.fit.samples)));
  response.set("steps_skipped",
               Json::number(static_cast<double>(scan.steps_skipped)));
  return response;
}

Json Engine::do_stats(const Request& request) {
  const EngineStats snapshot = stats();
  Json response =
      ok_response_head(Op::kStats, request, snapshot.generation);
  response.set("requests",
               Json::number(static_cast<double>(snapshot.requests)));
  response.set("errors", Json::number(static_cast<double>(snapshot.errors)));
  response.set("queue_stalls",
               Json::number(static_cast<double>(snapshot.queue_stalls)));
  response.set("batch_items",
               Json::number(static_cast<double>(snapshot.batch_items)));
  response.set("max_batch",
               Json::number(static_cast<double>(options_.max_batch)));
  Json machines = Json::array();
  for (const std::string& name : snapshot.machines) {
    machines.push(Json::string(name));
  }
  response.set("machines", std::move(machines));
  return response;
}

Json Engine::reject(const ProtocolError& error, const Json* id) {
  {
    // rme-lint: allow(lock-in-hot-path: O(1) error-counter bump)
    std::lock_guard<std::mutex> lock(mutex_);
    errors_ += 1;
  }
  if (options_.tracer != nullptr) {
    options_.tracer->add_counter("serve.errors", 1);
    options_.tracer->record_instant(to_string(error.code()), "serve.reject");
  }
  return error_response(error, id);
}

Engine::Entry Engine::find_machine(const std::string& name) const {
  // rme-lint: allow(lock-in-hot-path: registry lookup; O(log n) copy-out)
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = machines_.find(name);
  if (it == machines_.end()) {
    // The registered-key list is rebuilt once per ingest, not re-joined
    // per miss — the error body is byte-identical either way (pinned by
    // test_serve's UnknownMachineErrorBody).
    throw ProtocolError(ErrorCode::kUnknownMachine,
                        "unknown machine '" + name + "' (registered: " +
                            known_machines_ + ")");
  }
  return it->second;
}

std::uint64_t Engine::current_generation() const {
  // rme-lint: allow(lock-in-hot-path: O(1) generation read)
  std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

bool Engine::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_;
}

void Engine::note_queue_stall() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_stalls_ += 1;
  }
  if (options_.tracer != nullptr) {
    options_.tracer->add_counter("serve.queue_stalls", 1);
  }
}

EngineStats Engine::stats() const {
  // rme-lint: allow(lock-in-hot-path: stats endpoint snapshots under lock)
  std::lock_guard<std::mutex> lock(mutex_);
  EngineStats snapshot;
  snapshot.generation = generation_;
  snapshot.requests = requests_;
  snapshot.errors = errors_;
  snapshot.queue_stalls = queue_stalls_;
  snapshot.batch_items = batch_items_;
  snapshot.machines.reserve(machines_.size());
  for (const auto& [key, entry] : machines_) {
    (void)entry;
    snapshot.machines.push_back(key);
  }
  return snapshot;
}

}  // namespace rme::serve
