#include "rme/serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "rme/artifact/artifact.hpp"
#include "rme/core/batch.hpp"
#include "rme/core/machine_presets.hpp"
#include "rme/core/model.hpp"
#include "rme/core/units.hpp"
#include "rme/exec/pool.hpp"
#include "rme/fit/energy_fit.hpp"

namespace rme::serve {

namespace {

using artifact::JsonError;

/// Below this batch size, row serialization runs inline: spinning up the
/// exec pool costs more than serializing a handful of rows, and the
/// rows are a pure function of the batch index either way, so response
/// bytes do not depend on the choice.
constexpr std::size_t kParallelRowThreshold = 32;

/// Wire-safe number: computed model quantities can overflow to ±inf (an
/// EDP product of two huge finite inputs) or hit a degenerate-ratio NaN,
/// and Json::number throws on non-finite input — which would tear down
/// the response mid-frame.  Non-finite computed values serialize as JSON
/// null instead; finite values are byte-identical to Json::number.
Json wire_number(double v) {
  if (!std::isfinite(v)) return Json();
  return Json::number(v);
}

/// Extracts the KernelProfiles of a parsed batch (already validated:
/// finite, flops >= 0, bytes > 0) into a reused arena for the SoA
/// evaluator.
void batch_profiles_into(const std::vector<sim::KernelDesc>& batch,
                         std::vector<KernelProfile>& out) {
  out.clear();
  out.reserve(batch.size());
  for (const sim::KernelDesc& desc : batch) {
    out.push_back(desc.profile());
  }
}

/// Per-thread request arenas: the profile scratch and the ModelBatch
/// columns keep their capacity across requests (resize_for / clear
/// never shrink), so a steady-state predict/rank/whatif loop does not
/// touch the allocator.  Every element is overwritten per request and
/// no handler lets a reference escape the call, so reuse cannot leak
/// one request's readout into the next.  (whatif needs a second batch
/// for the edited machine, hence the pair.)
struct EvalArena {
  std::vector<KernelProfile> profiles;
  ModelBatch batch;
  ModelBatch edited_batch;
};

EvalArena& eval_arena() {
  thread_local EvalArena arena;
  return arena;
}

/// One evaluated descriptor: the full T/E/P readout of the model, read
/// out of the batch-evaluated SoA columns (bit-identical to the scalar
/// predict_time/predict_energy path — tests/test_batch.cpp).
Json predict_row(const sim::KernelDesc& desc, const ModelBatch& batch,
                 std::size_t i) {
  const double average_power = batch.total_joules[i] / batch.total_seconds[i];

  Json row = Json::object();
  row.set("name", Json::string(desc.name));
  row.set("precision", Json::string(to_string(desc.precision)));
  row.set("flops", Json::number(desc.flops));
  row.set("bytes", Json::number(desc.bytes));
  row.set("intensity", wire_number(batch.intensity[i]));
  row.set("seconds", wire_number(batch.total_seconds[i]));
  row.set("joules", wire_number(batch.total_joules[i]));
  row.set("watts", wire_number(average_power));
  row.set("flops_joules", wire_number(batch.flops_joules[i]));
  row.set("mem_joules", wire_number(batch.mem_joules[i]));
  row.set("const_joules", wire_number(batch.const_joules[i]));
  row.set("time_bound", Json::string(to_string(batch.overlap_bound[i])));
  row.set("energy_bound", Json::string(to_string(batch.energy_class[i])));
  row.set("disagree", Json::boolean(batch.disagree(i)));
  row.set("speed", wire_number(batch.speed[i]));
  row.set("efficiency", wire_number(batch.efficiency[i]));
  return row;
}

/// The derived-quantity summary used by `whatif` to show what an edit
/// did to the machine's character (balance points move, peaks move).
Json machine_summary(const MachineParams& m) {
  Json summary = Json::object();
  summary.set("gflops", wire_number(m.peak_flops().value() / kGiga));
  summary.set("gbs", wire_number(m.peak_bandwidth().value() / kGiga));
  summary.set("eps_flop_pj",
              wire_number(m.energy_per_flop.value() / kPico));
  summary.set("eps_mem_pj", wire_number(m.energy_per_byte.value() / kPico));
  summary.set("pi0_w", wire_number(m.const_power.value()));
  summary.set("b_tau", wire_number(m.time_balance()));
  summary.set("b_eps", wire_number(m.energy_balance()));
  summary.set("b_eps_fixed", wire_number(m.balance_fixed_point()));
  return summary;
}

/// Applies whatif edits; peaks and energies replace wholesale.
MachineParams apply_edits(const MachineParams& base,
                          const MachineEdits& edits) {
  MachineParams edited = base;
  edited.name = base.name + " (edited)";
  if (edits.gflops) {
    edited.time_per_flop = seconds_per_flop_from_gflops(*edits.gflops);
  }
  if (edits.gbs) {
    edited.time_per_byte = seconds_per_byte_from_gbs(*edits.gbs);
  }
  if (edits.eps_flop_pj) {
    edited.energy_per_flop = picojoules_per_flop(*edits.eps_flop_pj);
  }
  if (edits.eps_mem_pj) {
    edited.energy_per_byte = picojoules_per_byte(*edits.eps_mem_pj);
  }
  if (edits.pi0_w) {
    edited.const_power = watts(*edits.pi0_w);
  }
  return edited;
}

}  // namespace

Engine::Entry Engine::make_entry(MachineParams params,
                                 std::uint64_t generation) {
  Entry entry;
  entry.eval = MachineEval::from(params);
  entry.params = std::move(params);
  entry.generation = generation;
  return entry;
}

Engine::Engine(EngineOptions options) : options_(options) {
  machines_["fermi"] = make_entry(presets::fermi_table2(), 1);
  machines_["gtx580-sp"] = make_entry(presets::gtx580(Precision::kSingle), 1);
  machines_["gtx580-dp"] = make_entry(presets::gtx580(Precision::kDouble), 1);
  machines_["i7-sp"] = make_entry(presets::i7_950(Precision::kSingle), 1);
  machines_["i7-dp"] = make_entry(presets::i7_950(Precision::kDouble), 1);
  rebuild_known_machines_locked();
}

void Engine::rebuild_known_machines_locked() {
  known_machines_.clear();
  for (const auto& [key, entry] : machines_) {
    (void)entry;
    if (!known_machines_.empty()) known_machines_ += ", ";
    known_machines_ += key;
  }
}

// rme-hot: every wire request funnels through here; p99 latency budget
Json Engine::handle(std::string_view frame) {
  obs::Span request_span(options_.tracer, "request", "serve");
  {
    // rme-lint: allow(lock-in-hot-path: O(1) request-counter bump)
    std::lock_guard<std::mutex> lock(mutex_);
    requests_ += 1;
  }
  if (options_.tracer != nullptr) {
    options_.tracer->add_counter("serve.requests", 1);
  }

  Json document;
  try {
    document = Json::parse(frame);
  } catch (const JsonError& err) {
    return reject(ProtocolError(ErrorCode::kParseError, err.what()), nullptr);
  }
  if (!document.is_object()) {
    return reject(ProtocolError(ErrorCode::kParseError,
                                "request frame must be a JSON object"),
                  nullptr);
  }
  const Json* id = document.has("id") ? &document.at("id") : nullptr;
  try {
    const Request request = parse_frame(document, options_.max_batch);
    const char* op_name = to_string(request.op);
    obs::Span op_span(options_.tracer, op_name,
                      std::string("serve.") + op_name);
    return dispatch(request);
  } catch (const ProtocolError& err) {
    return reject(err, id);
  }
}

Json Engine::dispatch(const Request& request) {
  switch (request.op) {
    case Op::kPredict: return do_predict(request);
    case Op::kRank: return do_rank(request);
    case Op::kWhatif: return do_whatif(request);
    case Op::kIngest: return do_ingest(request);
    case Op::kStats: return do_stats(request);
    case Op::kShutdown: {
      std::uint64_t generation = 0;
      {
        // rme-lint: allow(lock-in-hot-path: drain flag; once per lifetime)
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
        generation = generation_;
      }
      Json response = ok_response_head(Op::kShutdown, request, generation);
      response.set("draining", Json::boolean(true));
      return response;
    }
  }
  throw ProtocolError(ErrorCode::kUnknownOp, "unhandled op");
}

Json Engine::do_predict(const Request& request) {
  const Entry entry = find_machine(request.machine);
  {
    // rme-lint: allow(lock-in-hot-path: O(1) batch-counter bump)
    std::lock_guard<std::mutex> lock(mutex_);
    batch_items_ += request.batch.size();
  }
  if (options_.tracer != nullptr) {
    options_.tracer->add_counter(
        "serve.batch_items", static_cast<std::int64_t>(request.batch.size()));
  }
  EvalArena& arena = eval_arena();
  batch_profiles_into(request.batch, arena.profiles);
  evaluate_batch_into(entry.eval, arena.profiles, arena.batch);
  const ModelBatch& batch = arena.batch;

  Json response =
      ok_response_head(Op::kPredict, request, current_generation());
  response.set("machine", Json::string(request.machine));
  Json results = Json::array();
  if (options_.jobs <= 1 || batch.size() < kParallelRowThreshold) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      results.push(predict_row(request.batch[i], batch, i));
    }
  } else {
    std::vector<Json> rows = exec::parallel_map(
        batch.size(),
        [&](std::size_t i) { return predict_row(request.batch[i], batch, i); },
        options_.jobs, options_.tracer);
    for (Json& row : rows) results.push(std::move(row));
  }
  response.set("results", std::move(results));
  return response;
}

Json Engine::do_rank(const Request& request) {
  const Entry entry = find_machine(request.machine);
  {
    // rme-lint: allow(lock-in-hot-path: O(1) batch-counter bump)
    std::lock_guard<std::mutex> lock(mutex_);
    batch_items_ += request.batch.size();
  }

  EvalArena& arena = eval_arena();
  batch_profiles_into(request.batch, arena.profiles);
  evaluate_batch_into(entry.eval, arena.profiles, arena.batch);
  const ModelBatch& batch = arena.batch;

  // Speedup/greenup are relative to the *first* variant as submitted —
  // the client's baseline — not to the eventual winner.
  const double baseline_time = batch.total_seconds.front();
  const double baseline_energy = batch.total_joules.front();
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     switch (request.rank_by) {
                       case RankBy::kTime:
                         return batch.total_seconds[a] < batch.total_seconds[b];
                       case RankBy::kEdp:
                         return batch.total_seconds[a] * batch.total_joules[a] <
                                batch.total_seconds[b] * batch.total_joules[b];
                       case RankBy::kEnergy:
                       case RankBy::kGreenup:
                         // Descending greenup E0/Ei == ascending Ei.
                         return batch.total_joules[a] < batch.total_joules[b];
                     }
                     return a < b;
                   });

  Json response = ok_response_head(Op::kRank, request, current_generation());
  response.set("machine", Json::string(request.machine));
  response.set("by", Json::string(to_string(request.rank_by)));
  response.set("baseline", Json::string(request.batch.front().name));
  Json ranked = Json::array();
  for (std::size_t position = 0; position < order.size(); ++position) {
    const std::size_t i = order[position];
    Json row = Json::object();
    row.set("rank", Json::number(static_cast<double>(position + 1)));
    row.set("name", Json::string(request.batch[i].name));
    row.set("seconds", wire_number(batch.total_seconds[i]));
    row.set("joules", wire_number(batch.total_joules[i]));
    // The EDP product of two huge-but-valid predictions can overflow to
    // +inf; wire_number turns that (and any degenerate ratio below)
    // into null instead of a torn frame.
    row.set("edp", wire_number(batch.total_seconds[i] *
                               batch.total_joules[i]));
    row.set("speedup", wire_number(baseline_time / batch.total_seconds[i]));
    row.set("greenup", wire_number(baseline_energy / batch.total_joules[i]));
    ranked.push(std::move(row));
  }
  response.set("ranked", std::move(ranked));
  return response;
}

Json Engine::do_whatif(const Request& request) {
  const Entry entry = find_machine(request.machine);
  {
    // rme-lint: allow(lock-in-hot-path: O(1) batch-counter bump)
    std::lock_guard<std::mutex> lock(mutex_);
    batch_items_ += request.batch.size();
  }
  const MachineParams edited = apply_edits(entry.params, request.edits);

  EvalArena& arena = eval_arena();
  batch_profiles_into(request.batch, arena.profiles);
  evaluate_batch_into(entry.eval, arena.profiles, arena.batch);
  evaluate_batch_into(MachineEval::from(edited), arena.profiles,
                      arena.edited_batch);
  const ModelBatch& base_batch = arena.batch;
  const ModelBatch& edited_batch = arena.edited_batch;

  Json response =
      ok_response_head(Op::kWhatif, request, current_generation());
  response.set("machine", Json::string(request.machine));
  response.set("base", machine_summary(entry.params));
  response.set("edited", machine_summary(edited));
  Json kernels = Json::array();
  for (std::size_t i = 0; i < base_batch.size(); ++i) {
    Json row = Json::object();
    row.set("name", Json::string(request.batch[i].name));
    row.set("base_seconds", wire_number(base_batch.total_seconds[i]));
    row.set("base_joules", wire_number(base_batch.total_joules[i]));
    row.set("edited_seconds",
            wire_number(edited_batch.total_seconds[i]));
    row.set("edited_joules",
            wire_number(edited_batch.total_joules[i]));
    row.set("speedup", wire_number(base_batch.total_seconds[i] /
                                   edited_batch.total_seconds[i]));
    row.set("greenup", wire_number(base_batch.total_joules[i] /
                                   edited_batch.total_joules[i]));
    kernels.push(std::move(row));
  }
  response.set("kernels", std::move(kernels));
  return response;
}

// rme-cold: control-plane op; artifact ingest is file I/O by design
Json Engine::do_ingest(const Request& request) {
  const artifact::CoefficientScan scan =
      artifact::read_artifact_coefficients(request.ingest_artifact);
  if (scan.status == artifact::ScanStatus::kCorrupt) {
    throw ProtocolError(ErrorCode::kIngestFailed,
                        "corrupt artifact: " + scan.message);
  }
  if (!scan.has_header) {
    throw ProtocolError(ErrorCode::kIngestFailed,
                        "artifact '" + request.ingest_artifact +
                            "' is missing or empty");
  }
  if (!scan.has_fit) {
    throw ProtocolError(ErrorCode::kIngestFailed,
                        "artifact has no fit record; run the sweep to "
                        "completion before ingesting");
  }

  MachineParams peaks_single;
  MachineParams peaks_double;
  if (scan.header.platform == "i7") {
    peaks_single = presets::i7_950(Precision::kSingle);
    peaks_double = presets::i7_950(Precision::kDouble);
  } else if (scan.header.platform == "gtx580") {
    peaks_single = presets::gtx580(Precision::kSingle);
    peaks_double = presets::gtx580(Precision::kDouble);
  } else {
    throw ProtocolError(ErrorCode::kIngestFailed,
                        "unknown artifact platform '" + scan.header.platform +
                            "' (want i7 or gtx580)");
  }

  fit::EnergyCoefficients coefficients;
  coefficients.eps_single = EnergyPerFlop{scan.fit.eps_single};
  coefficients.delta_double = EnergyPerFlop{scan.fit.delta_double};
  coefficients.eps_mem = EnergyPerByte{scan.fit.eps_mem};
  coefficients.const_power = Watts{scan.fit.const_power};

  MachineParams fitted_single =
      coefficients.to_machine(peaks_single, Precision::kSingle);
  MachineParams fitted_double =
      coefficients.to_machine(peaks_double, Precision::kDouble);
  fitted_single.name =
      request.ingest_name + "-sp (fitted on " + scan.header.platform + ")";
  fitted_double.name =
      request.ingest_name + "-dp (fitted on " + scan.header.platform + ")";

  // A fit record with a non-finite, zero, or negative coefficient would
  // install a machine whose every prediction is inf/NaN (and whose rank
  // greenup baselines divide by zero).  Refuse it at the door.
  if (!fitted_single.valid() || !fitted_double.valid()) {
    throw ProtocolError(ErrorCode::kIngestFailed,
                        "fitted coefficients do not describe a usable "
                        "machine (non-finite or non-positive parameter)");
  }

  std::uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    generation_ += 1;
    generation = generation_;
    machines_[request.ingest_name + "-sp"] =
        make_entry(std::move(fitted_single), generation);
    machines_[request.ingest_name + "-dp"] =
        make_entry(std::move(fitted_double), generation);
    rebuild_known_machines_locked();
  }
  if (options_.tracer != nullptr) {
    options_.tracer->add_counter("serve.ingests", 1);
  }

  Json response = ok_response_head(Op::kIngest, request, generation);
  Json installed = Json::array();
  installed.push(Json::string(request.ingest_name + "-sp"));
  installed.push(Json::string(request.ingest_name + "-dp"));
  response.set("installed", std::move(installed));
  response.set("platform", Json::string(scan.header.platform));
  response.set("r_squared", Json::number(scan.fit.r_squared));
  response.set("fit_samples",
               Json::number(static_cast<double>(scan.fit.samples)));
  response.set("steps_skipped",
               Json::number(static_cast<double>(scan.steps_skipped)));
  return response;
}

Json Engine::do_stats(const Request& request) {
  const EngineStats snapshot = stats();
  Json response =
      ok_response_head(Op::kStats, request, snapshot.generation);
  response.set("requests",
               Json::number(static_cast<double>(snapshot.requests)));
  response.set("errors", Json::number(static_cast<double>(snapshot.errors)));
  response.set("queue_stalls",
               Json::number(static_cast<double>(snapshot.queue_stalls)));
  response.set("batch_items",
               Json::number(static_cast<double>(snapshot.batch_items)));
  response.set("max_batch",
               Json::number(static_cast<double>(options_.max_batch)));
  Json machines = Json::array();
  for (const std::string& name : snapshot.machines) {
    machines.push(Json::string(name));
  }
  response.set("machines", std::move(machines));
  return response;
}

Json Engine::reject(const ProtocolError& error, const Json* id) {
  {
    // rme-lint: allow(lock-in-hot-path: O(1) error-counter bump)
    std::lock_guard<std::mutex> lock(mutex_);
    errors_ += 1;
  }
  if (options_.tracer != nullptr) {
    options_.tracer->add_counter("serve.errors", 1);
    options_.tracer->record_instant(to_string(error.code()), "serve.reject");
  }
  return error_response(error, id);
}

Engine::Entry Engine::find_machine(const std::string& name) const {
  // rme-lint: allow(lock-in-hot-path: registry lookup; O(log n) copy-out)
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = machines_.find(name);
  if (it == machines_.end()) {
    // The registered-key list is rebuilt once per ingest, not re-joined
    // per miss — the error body is byte-identical either way (pinned by
    // test_serve's UnknownMachineErrorBody).
    throw ProtocolError(ErrorCode::kUnknownMachine,
                        "unknown machine '" + name + "' (registered: " +
                            known_machines_ + ")");
  }
  return it->second;
}

std::uint64_t Engine::current_generation() const {
  // rme-lint: allow(lock-in-hot-path: O(1) generation read)
  std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

bool Engine::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_;
}

void Engine::note_queue_stall() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_stalls_ += 1;
  }
  if (options_.tracer != nullptr) {
    options_.tracer->add_counter("serve.queue_stalls", 1);
  }
}

EngineStats Engine::stats() const {
  // rme-lint: allow(lock-in-hot-path: stats endpoint snapshots under lock)
  std::lock_guard<std::mutex> lock(mutex_);
  EngineStats snapshot;
  snapshot.generation = generation_;
  snapshot.requests = requests_;
  snapshot.errors = errors_;
  snapshot.queue_stalls = queue_stalls_;
  snapshot.batch_items = batch_items_;
  snapshot.machines.reserve(machines_.size());
  for (const auto& [key, entry] : machines_) {
    (void)entry;
    snapshot.machines.push_back(key);
  }
  return snapshot;
}

}  // namespace rme::serve
