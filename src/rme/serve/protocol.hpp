#pragma once
// rme::serve — the roofline-as-a-service wire protocol.
//
// Frames are newline-delimited JSON: one request object per line in,
// one response object per line out, in request order.  The grammar is
// the deterministic rme::artifact::Json dialect (insertion-ordered
// members, to_chars shortest-round-trip numbers), so a response number
// parses back to the exact double the model computed — the conformance
// suite pins responses byte-for-byte and proves `predict` bit-equal to
// direct library calls (docs/SERVE.md).
//
// Every malformed frame yields a *structured error response* on the
// same connection, which stays serviceable: parse errors never tear
// down the session, and overload is an explicit `overloaded` error with
// a `retry_after_ms` hint — never a silent drop.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "rme/artifact/json.hpp"
#include "rme/core/machine.hpp"
#include "rme/sim/kernel_desc.hpp"

namespace rme::serve {

using artifact::Json;

/// Stable machine-readable error codes (the `error.code` field).
enum class ErrorCode {
  kParseError,      ///< Frame is not a valid JSON object.
  kBadRequest,      ///< Valid JSON, invalid shape/field/value.
  kUnknownOp,       ///< `op` names no endpoint.
  kUnknownMachine,  ///< `machine` names no registered preset.
  kEmptyBatch,      ///< `batch`/`variants` present but empty.
  kOverCapacity,    ///< Batch larger than the server's --max-batch.
  kOverloaded,      ///< Request queue full; retry after the hint.
  kIngestFailed,    ///< Artifact missing, corrupt, or incomplete.
};

[[nodiscard]] const char* to_string(ErrorCode code) noexcept;

/// A rejected request: `code` is the wire error code, what() the
/// human-readable message carried in `error.message`.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// The endpoints.  `stats` and `shutdown` are operational endpoints
/// used by the soak harness and orderly drains.
enum class Op { kPredict, kRank, kWhatif, kIngest, kStats, kShutdown };

[[nodiscard]] const char* to_string(Op op) noexcept;

/// Ranking metric for the `rank` endpoint.
enum class RankBy {
  kEnergy,   ///< Ascending predicted joules.
  kTime,     ///< Ascending predicted seconds.
  kEdp,      ///< Ascending energy-delay product.
  kGreenup,  ///< Descending greenup vs the first variant (baseline).
};

[[nodiscard]] const char* to_string(RankBy by) noexcept;

/// Machine-edit deltas for `whatif`.  All optional; at least one must
/// be present.  Peaks replace, energies replace, pi0 replaces.
struct MachineEdits {
  std::optional<double> eps_flop_pj;  ///< New ε_flop [pJ/flop].
  std::optional<double> eps_mem_pj;   ///< New ε_mem [pJ/byte].
  std::optional<double> pi0_w;        ///< New π_0 [W].
  std::optional<double> gflops;       ///< New peak arithmetic rate.
  std::optional<double> gbs;          ///< New peak bandwidth [GB/s].

  [[nodiscard]] bool any() const noexcept {
    return eps_flop_pj || eps_mem_pj || pi0_w || gflops || gbs;
  }
};

/// One parsed request frame.  Fields beyond `op`/`id` are populated
/// per endpoint; parse_request validates shapes and value ranges.
struct Request {
  Op op = Op::kStats;
  bool has_id = false;
  Json id;  ///< Echoed verbatim in the response when present.

  std::string machine;                  ///< predict / rank / whatif.
  std::vector<sim::KernelDesc> batch;   ///< predict / whatif / rank.
  RankBy rank_by = RankBy::kEnergy;     ///< rank.
  MachineEdits edits;                   ///< whatif.
  std::string ingest_name;              ///< ingest: registry key stem.
  std::string ingest_artifact;          ///< ingest: .rmea path.
};

/// Parses and validates one frame.  Throws ProtocolError with the
/// appropriate code on any malformation; messages name the offending
/// field (and batch index) so clients can self-diagnose.
[[nodiscard]] Request parse_request(std::string_view line,
                                    std::size_t max_batch);

/// The validation stage alone, for callers that already parsed the
/// JSON (the engine parses first so a validation error can still echo
/// the request's `id`).  `frame` must be a JSON object.
[[nodiscard]] Request parse_frame(const Json& frame, std::size_t max_batch);

/// The error response for a rejected frame; echoes `id` when the
/// request parsed far enough to yield one.
[[nodiscard]] Json error_response(const ProtocolError& error,
                                  const Json* id);

/// The backpressure response: queue full, retry after the hint.
/// Emitted by the server before parsing (shedding load must be cheap),
/// so it never carries an id.
[[nodiscard]] Json overloaded_response(std::int64_t retry_after_ms);

/// Starts an ok response: {"ok":true,"op":...,("id":...,)"gen":...}.
[[nodiscard]] Json ok_response_head(Op op, const Request& request,
                                    std::uint64_t generation);

}  // namespace rme::serve
