#pragma once
// rme::serve — transports for the daemon.
//
// Two transports answer the same newline-delimited protocol with the
// same Engine, so their outputs are byte-identical for the same frame
// sequence (pinned by tests/test_serve.cpp):
//
//   * pipe   — serve_stream(istream, ostream): stdin/stdout serving for
//              tests, CI, and `rme_served --pipe | jq` pipelines; no
//              networking involved;
//   * socket — serve_unix(path): an AF_UNIX stream socket, one
//              connection at a time, connections served until a
//              `shutdown` frame drains the daemon.
//
// Backpressure: the ingress queue is bounded (ServerOptions::
// queue_limit).  A frame that arrives when the queue is full is
// answered immediately with an `overloaded` error carrying a
// `retry_after_ms` hint — never silently dropped, and the connection
// stays serviceable.  The sequential transports answer each frame
// before reading the next, so their live queue depth never exceeds one;
// the deterministic `chaos_full_at` hook (the moral twin of
// artifact::ChaosConfig) makes the overload path reachable — and
// therefore testable — at a seeded frame index.
//
// Each connection owns one Arena: frames are interned into it and it is
// reset between frames, so steady-state serving does not grow the heap
// per request; the high-water mark is exported through ServeStats.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "rme/serve/engine.hpp"

namespace rme::serve {

/// Daemon configuration, filled from flags by tools/rme_served.
struct ServerOptions {
  unsigned jobs = 1;             ///< Within-batch parallelism.
  std::size_t max_batch = 1024;  ///< Largest accepted batch.
  std::size_t queue_limit = 64;  ///< Bounded ingress queue depth.
  std::int64_t retry_after_ms = 50;  ///< Overload back-off hint.
  /// Chaos hook: treat the queue as full at this 0-based global frame
  /// index (one rejection, then normal service).  Negative = disabled.
  long long chaos_full_at = -1;
  obs::Tracer* tracer = nullptr;  ///< Optional; null = no-op sink.
};

/// Transport-level accounting across a serve loop's lifetime.
struct ServeStats {
  std::uint64_t frames_in = 0;   ///< Lines read off the transport.
  std::uint64_t responses = 0;   ///< Lines written back (1:1 with in).
  std::uint64_t overload_rejections = 0;  ///< Backpressure answers.
  std::uint64_t connections = 0;          ///< Socket mode: accepts.
  std::size_t arena_high_water = 0;  ///< Max live frame bytes seen.
  std::size_t arena_capacity = 0;    ///< Arena capacity at loop exit.
};

/// The daemon: one Engine plus the two transports.
class Server {
 public:
  explicit Server(ServerOptions options);

  [[nodiscard]] Engine& engine() noexcept { return engine_; }

  /// Pipe mode: answers frames from `in` on `out` until EOF, a
  /// `shutdown` frame, or an unwritable output stream.
  ServeStats serve_stream(std::istream& in, std::ostream& out);

  /// Socket mode: binds an AF_UNIX stream socket at `path` (replacing
  /// any stale file), accepts connections one at a time, and returns
  /// after a `shutdown` frame.  Throws std::runtime_error on socket
  /// setup failures.
  ServeStats serve_unix(const std::string& path);

 private:
  /// Answers one frame (or sheds it); returns the response line
  /// including its trailing newline.
  [[nodiscard]] std::string respond(std::string_view line, ServeStats& stats);

  ServerOptions options_;
  Engine engine_;
  std::uint64_t frame_index_ = 0;  ///< Global across connections.
};

}  // namespace rme::serve
