#include "rme/serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <system_error>
#include <utility>

#include "rme/serve/arena.hpp"

namespace rme::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(
      "serve: " + what + ": " +
      std::system_category().message(errno));
}

/// Writes the whole buffer to `fd`, resuming across short writes and
/// EINTR.  Returns false when the peer is gone (EPIPE & friends).
bool write_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Minimal line reader over a file descriptor; one heap buffer per
/// connection, reused across frames.
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  /// Reads the next '\n'-terminated line (newline stripped).  Returns
  /// false on EOF or read error.  A final unterminated line is
  /// delivered as-is, matching std::getline.
  bool next_line(std::string& line) {
    line.clear();
    for (;;) {
      const std::size_t nl = buffer_.find('\n', scanned_);
      if (nl != std::string::npos) {
        line.assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        scanned_ = 0;
        return true;
      }
      scanned_ = buffer_.size();
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) {
        if (buffer_.empty()) return false;
        line.swap(buffer_);
        scanned_ = 0;
        return true;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
  std::size_t scanned_ = 0;  ///< Prefix already searched for '\n'.
};

/// RAII file descriptor (close on scope exit, EINTR-safe enough for
/// sockets on Linux where close always invalidates the fd).
class UniqueFd {
 public:
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() {
    if (fd_ >= 0) ::close(fd_);
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }

 private:
  int fd_;
};

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      engine_(EngineOptions{options.jobs, options.max_batch,
                            options.tracer}) {}

std::string Server::respond(std::string_view line, ServeStats& stats) {
  stats.frames_in += 1;
  // The sequential transports answer each frame before reading the
  // next, so the live queue depth is at most one and a real overflow of
  // `queue_limit` is unreachable here; the chaos hook injects the
  // rejection deterministically so the shed path stays tested.
  const bool shed =
      (options_.chaos_full_at >= 0 &&
       frame_index_ ==
           static_cast<std::uint64_t>(options_.chaos_full_at)) ||
      options_.queue_limit == 0;
  frame_index_ += 1;
  std::string payload;
  if (shed) {
    engine_.note_queue_stall();
    stats.overload_rejections += 1;
    payload = overloaded_response(options_.retry_after_ms).dump();
  } else {
    payload = engine_.handle(line).dump();
  }
  stats.responses += 1;
  payload += '\n';
  return payload;
}

ServeStats Server::serve_stream(std::istream& in, std::ostream& out) {
  ServeStats stats;
  Arena arena;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view frame = arena.intern(line);
    const std::string payload = respond(frame, stats);
    out << payload;
    out.flush();
    arena.reset();
    if (!out) break;  // Peer gone; nothing left to serve.
    if (engine_.shutdown_requested()) break;
  }
  stats.arena_high_water = arena.high_water_bytes();
  stats.arena_capacity = arena.capacity_bytes();
  return stats;
}

ServeStats Server::serve_unix(const std::string& path) {
  ServeStats stats;

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("serve: socket path too long: " + path);
  }
  path.copy(addr.sun_path, path.size());

  UniqueFd listener(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (listener.get() < 0) throw_errno("socket");
  ::unlink(path.c_str());  // Replace a stale socket file, if any.
  if (::bind(listener.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw_errno("bind " + path);
  }
  if (::listen(listener.get(), 8) != 0) throw_errno("listen " + path);

  while (!engine_.shutdown_requested()) {
    const int accepted = ::accept(listener.get(), nullptr, nullptr);
    if (accepted < 0) {
      if (errno == EINTR) continue;
      throw_errno("accept");
    }
    UniqueFd conn(accepted);
    stats.connections += 1;

    Arena arena;
    FdLineReader reader(conn.get());
    std::string line;
    while (reader.next_line(line)) {
      const std::string_view frame = arena.intern(line);
      const std::string payload = respond(frame, stats);
      const bool delivered = write_all(conn.get(), payload);
      arena.reset();
      if (!delivered) break;  // Peer gone; await the next connection.
      if (engine_.shutdown_requested()) break;
    }
    if (arena.high_water_bytes() > stats.arena_high_water) {
      stats.arena_high_water = arena.high_water_bytes();
    }
    if (arena.capacity_bytes() > stats.arena_capacity) {
      stats.arena_capacity = arena.capacity_bytes();
    }
  }

  ::unlink(path.c_str());
  return stats;
}

}  // namespace rme::serve
