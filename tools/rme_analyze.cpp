// rme_analyze: the project static analyzer.  Successor to the old
// single-rule rme_lint — see src/rme/analyze/ for the source model,
// the rule registry, and the cross-TU engine; docs/ANALYSIS.md for the
// rule catalogue, the layer DAG, the suppression syntax, and the
// baseline workflow.
//
// Usage:
//   rme_analyze [--list-rules] [--explain=<rule>]
//               [--rule=<name>[,<name>...]]
//               [--jobs=N] [--cache=<file>] [--baseline=<file>]
//               [--write-baseline=<file>] [--format=text|json|sarif]
//               [--dot=<file>] [--metrics] <dir-or-file>...
//
// The analysis itself is deterministic: for a fixed tree the report is
// byte-identical at every --jobs value (a ctest asserts 1 vs 4).
//
// Exit status: 0 clean, 1 findings remain, 2 bad usage / IO error.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "rme/analyze/analyzer.hpp"
#include "rme/analyze/baseline.hpp"
#include "rme/analyze/include_graph.hpp"
#include "rme/analyze/rules.hpp"
#include "rme/cli/args.hpp"
#include "rme/cli/exit_codes.hpp"
#include "rme/obs/clock.hpp"
#include "rme/obs/metrics.hpp"
#include "rme/obs/trace.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: rme_analyze [--list-rules] [--explain=<rule>]\n"
        "                   [--rule=<name>[,<name>...]]\n"
        "                   [--jobs=N] [--cache=<file>] "
        "[--baseline=<file>]\n"
        "                   [--write-baseline=<file>] "
        "[--format=text|json|sarif]\n"
        "                   [--dot=<file>] [--metrics] <dir-or-file>...\n"
        "  --explain=<rule>    print the rule's rationale and safe\n"
        "                      replacements (from the registry), then exit\n"
        "  --jobs=N            parallel per-file analysis (0 = hardware);\n"
        "                      output is byte-identical for every N\n"
        "  --cache=<file>      incremental cache keyed by content hash\n"
        "  --baseline=<file>   suppress the checked-in accepted findings\n"
        "  --write-baseline=F  write current findings as the new baseline\n"
        "  --dot=<file>        export the module include graph (- = "
        "stdout)\n"
        "  --metrics           print counters and per-rule latencies to "
        "stderr\n"
        "exit status: 0 clean, 1 findings, 2 bad usage or IO error\n";
}

/// Prints one rule's registry documentation; exit 2 when unknown.
int explain_rule(const std::string& name) {
  std::string_view description;
  std::string_view paragraph;
  bool cross_tu = false;
  if (const rme::analyze::Rule* r = rme::analyze::find_rule(name)) {
    description = r->description();
    paragraph = r->explain();
  } else if (const rme::analyze::ProjectRule* p =
                 rme::analyze::find_project_rule(name)) {
    description = p->description();
    paragraph = p->explain();
    cross_tu = true;
  } else {
    std::cerr << "rme_analyze: unknown rule '" << name
              << "' (--list-rules prints the catalogue)\n";
    return rme::cli::kExitUsage;
  }
  std::cout << name << (cross_tu ? " (cross-TU)" : "") << "\n    "
            << description << "\n\n"
            << paragraph << "\n";
  return rme::cli::kExitOk;
}

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool list_rules = false;
  bool metrics = false;
  bool explain = false;
  std::string explain_name;
  std::string format = "text";
  std::string dot_target;
  std::filesystem::path write_baseline;
  rme::analyze::ProjectOptions options;
  std::vector<std::filesystem::path> paths;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--list-rules") {
        list_rules = true;
      } else if (arg.rfind("--explain=", 0) == 0) {
        explain = true;
        explain_name = arg.substr(10);
      } else if (arg == "--explain") {
        if (i + 1 >= argc) {
          std::cerr << "rme_analyze: --explain needs a rule name\n";
          print_usage(std::cerr);
          return rme::cli::kExitUsage;
        }
        explain = true;
        explain_name = argv[++i];
      } else if (arg.rfind("--rule=", 0) == 0) {
        for (std::string& s : split_csv(arg.substr(7))) {
          options.selectors.push_back(std::move(s));
        }
      } else if (arg.rfind("--jobs=", 0) == 0) {
        options.jobs = rme::cli::parse_unsigned32(arg.substr(7), "--jobs");
      } else if (arg.rfind("--cache=", 0) == 0) {
        options.cache_path = arg.substr(8);
      } else if (arg.rfind("--baseline=", 0) == 0) {
        options.baseline_path = arg.substr(11);
      } else if (arg.rfind("--write-baseline=", 0) == 0) {
        write_baseline = arg.substr(17);
      } else if (arg.rfind("--dot=", 0) == 0) {
        dot_target = arg.substr(6);
      } else if (arg == "--metrics") {
        metrics = true;
      } else if (arg.rfind("--format=", 0) == 0) {
        format = arg.substr(9);
        if (format != "text" && format != "json" && format != "sarif") {
          std::cerr << "rme_analyze: unknown format '" << format << "'\n";
          print_usage(std::cerr);
          return rme::cli::kExitUsage;
        }
      } else if (arg == "--help" || arg == "-h") {
        print_usage(std::cout);
        return rme::cli::kExitOk;
      } else if (arg.rfind("--", 0) == 0) {
        std::cerr << "rme_analyze: unknown option '" << arg << "'\n";
        print_usage(std::cerr);
        return rme::cli::kExitUsage;
      } else {
        paths.emplace_back(arg);
      }
    }
  } catch (const rme::cli::UsageError& e) {
    std::cerr << "rme_analyze: " << e.what() << "\n";
    print_usage(std::cerr);
    return rme::cli::kExitUsage;
  }

  if (explain) return explain_rule(explain_name);
  if (list_rules) {
    for (const rme::analyze::Rule* r : rme::analyze::all_rules()) {
      std::cout << r->name() << "\n    " << r->description() << "\n";
    }
    for (const rme::analyze::ProjectRule* r :
         rme::analyze::all_project_rules()) {
      std::cout << r->name() << " (cross-TU)\n    " << r->description()
                << "\n";
    }
    return rme::cli::kExitOk;
  }
  if (paths.empty()) {
    print_usage(std::cerr);
    return rme::cli::kExitUsage;
  }

  const std::unique_ptr<rme::obs::Clock> clock = rme::obs::make_real_clock();
  rme::obs::Tracer tracer(*clock);
  if (metrics) options.tracer = &tracer;

  rme::analyze::ProjectReport report;
  try {
    report = rme::analyze::analyze_project(paths, options);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return rme::cli::kExitUsage;
  }

  if (!dot_target.empty()) {
    const std::string dot = rme::analyze::write_dot(report.graph);
    if (dot_target == "-") {
      std::cout << dot;
    } else {
      std::ofstream out(dot_target, std::ios::trunc);
      out << dot;
      if (!out) {
        std::cerr << "rme_analyze: cannot write " << dot_target << "\n";
        return rme::cli::kExitUsage;
      }
    }
  }

  if (!write_baseline.empty()) {
    // The baseline captures what the run *would* report — findings that
    // survived inline suppression and any --baseline already applied.
    std::ofstream out(write_baseline, std::ios::trunc);
    out << rme::analyze::Baseline::render(report.findings);
    if (!out) {
      std::cerr << "rme_analyze: cannot write " << write_baseline.string()
                << "\n";
      return rme::cli::kExitUsage;
    }
    std::cout << "rme_analyze: wrote " << report.findings.size()
              << " fingerprint(s) to " << write_baseline.string() << "\n";
    return rme::cli::kExitOk;
  }

  if (format == "json") {
    rme::analyze::write_json(std::cout, report);
  } else if (format == "sarif") {
    rme::analyze::write_sarif(std::cout, report);
  } else {
    rme::analyze::write_text(report.findings.empty() && report.errors.empty()
                                 ? std::cout
                                 : std::cerr,
                             report);
  }
  if (metrics) {
    rme::obs::write_metrics_summary(std::cerr, tracer.snapshot());
  }
  if (!report.errors.empty()) return rme::cli::kExitUsage;
  return report.findings.empty() ? rme::cli::kExitOk
                                 : rme::cli::kExitDegraded;
}
