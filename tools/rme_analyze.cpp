// rme_analyze: the project static analyzer.  Successor to the old
// single-rule rme_lint — see src/rme/analyze/ for the source model and
// the rule registry, docs/ANALYSIS.md for the rule catalogue and the
// suppression syntax.
//
// Usage:
//   rme_analyze [--list-rules] [--rule=<name>[,<name>...]]
//               [--format=text|json] <dir-or-file>...
//
// Exit status: 0 clean, 1 findings remain, 2 bad usage / IO error.

#include <filesystem>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "rme/analyze/analyzer.hpp"
#include "rme/analyze/rules.hpp"
#include "rme/cli/exit_codes.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: rme_analyze [--list-rules] [--rule=<name>[,<name>...]]\n"
        "                   [--format=text|json] <dir-or-file>...\n"
        "exit status: 0 clean, 1 findings, 2 bad usage or IO error\n";
}

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool list_rules = false;
  std::string format = "text";
  std::vector<std::string> selectors;
  std::vector<std::filesystem::path> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg.rfind("--rule=", 0) == 0) {
      for (std::string& s : split_csv(arg.substr(7))) {
        selectors.push_back(std::move(s));
      }
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::cerr << "rme_analyze: unknown format '" << format << "'\n";
        print_usage(std::cerr);
        return rme::cli::kExitUsage;
      }
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return rme::cli::kExitOk;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "rme_analyze: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return rme::cli::kExitUsage;
    } else {
      paths.emplace_back(arg);
    }
  }

  if (list_rules) {
    for (const rme::analyze::Rule* r : rme::analyze::all_rules()) {
      std::cout << r->name() << "\n    " << r->description() << "\n";
    }
    return rme::cli::kExitOk;
  }
  if (paths.empty()) {
    print_usage(std::cerr);
    return rme::cli::kExitUsage;
  }

  std::vector<const rme::analyze::Rule*> rules;
  try {
    rules = rme::analyze::select_rules(selectors);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return rme::cli::kExitUsage;
  }

  const rme::analyze::Report report =
      rme::analyze::analyze_paths(paths, rules);
  if (format == "json") {
    rme::analyze::write_json(std::cout, report);
  } else {
    rme::analyze::write_text(report.findings.empty() && report.errors.empty()
                                 ? std::cout
                                 : std::cerr,
                             report);
  }
  if (!report.errors.empty()) return rme::cli::kExitUsage;
  return report.findings.empty() ? rme::cli::kExitOk
                                 : rme::cli::kExitDegraded;
}
