// rme_cli — command-line energy-roofline calculator.
//
// Subcommands:
//   machines
//       List the built-in machine presets with derived balance points.
//   balance  <machine>
//       Balance points, gap, and the race-to-halt verdict.
//   predict  <machine> <flops> <bytes>
//       Time/energy/power prediction for an algorithm (W, Q).
//   chart    <machine> [lo hi]
//       ASCII roofline + arch line over an intensity range.
//   greenup  <machine> <I> <f> <m>
//       Work-communication trade-off evaluation (§VII, eq. 10).
//   fit      <samples.csv> [--huber] [--relative] [--bootstrap N] [--jobs N]
//            [--trace PATH] [--metrics]
//       Fit eq. (9) energy coefficients from a measurement CSV
//       (columns: flops,bytes,seconds,joules,precision).  --huber
//       switches to the robust IRLS estimator; --relative fits
//       relative residuals (for multiplicative instrument noise);
//       --bootstrap N adds percentile CIs from N resamples.
//   faults   <i7|gtx580> [dropout spike [reps]] [--jobs N] [--trace PATH]
//            [--metrics]
//       Fault-injection study: run the measurement pipeline with the
//       given sample-dropout and spike rates, report session quality,
//       and compare clean/OLS/Huber/QC eq. (9) coefficients.
//   sweep    <machine> [lo hi] [--jobs N] [--trace PATH] [--metrics]
//       Fig. 4-style table: normalized speed/efficiency/power per
//       intensity.
//   sweep    <i7|gtx580> --artifact PATH [--resume] [--csv PATH] [...]
//       Crash-safe measurement sweep journaled to a .rmea artifact:
//       each step is appended (checksummed) before the next starts, so
//       an interrupted run resumes with --resume and finishes with an
//       artifact byte-identical to the uninterrupted one.  Retry flags
//       (--attempts/--backoff/--deadline/--jitter) shape the per-step
//       RetryPolicy (docs/REPLAY.md).
//   replay   <artifact.rmea> [--refit] [--csv PATH]
//       Re-run the analysis (and optionally the eq. (9) fit) from a
//       completed artifact's captured records, with no simulation.
//   cap      <machine> <watts>
//       Power-cap study: throttle scale and capped performance.
//   advise   <machine> <flops> <bytes>
//       Optimization advice (SsII-D): classification, headroom,
//       intensity targets per metric, and which goal is harder.
//
// Machines: fermi | gtx580-sp | gtx580-dp | i7-sp | i7-dp
//
// --jobs N runs the subcommand's sweep on an rme::exec thread pool
// (0 = hardware concurrency).  Every sweep is deterministic: the output
// is byte-identical for every N (see docs/API.md, "Parallel execution
// & determinism").
//
// --trace PATH writes a Chrome trace-event JSON of the run (load in
// chrome://tracing or ui.perfetto.dev); --metrics prints an rme::obs
// summary to stderr.  Both observe without perturbing stdout.
//
// Numeric arguments are parsed strictly (rme::cli): `--jobs abc` or
// trailing garbage exits 2 with a message naming the flag, instead of
// silently becoming 0.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "rme/rme.hpp"

using namespace rme;

namespace {

std::optional<MachineParams> machine_by_name(const std::string& name) {
  if (name == "fermi") return presets::fermi_table2();
  if (name == "gtx580-sp") return presets::gtx580(Precision::kSingle);
  if (name == "gtx580-dp") return presets::gtx580(Precision::kDouble);
  if (name == "i7-sp") return presets::i7_950(Precision::kSingle);
  if (name == "i7-dp") return presets::i7_950(Precision::kDouble);
  return std::nullopt;
}

int usage() {
  std::cerr
      << "usage: rme_cli <command> [args]\n"
         "  machines\n"
         "  balance <machine>\n"
         "  predict <machine> <flops> <bytes>\n"
         "  chart   <machine> [lo hi]\n"
         "  greenup <machine> <I> <f> <m>\n"
         "  fit     <samples.csv> [--huber] [--relative] [--bootstrap N]"
         " [--jobs N]\n"
         "          [--trace PATH] [--metrics]\n"
         "  faults  <i7|gtx580> [dropout spike [reps]] [--jobs N]"
         " [--trace PATH]\n"
         "          [--metrics]\n"
         "  sweep   <machine> [lo hi] [--jobs N] [--trace PATH] [--metrics]\n"
         "  sweep   <i7|gtx580> --artifact PATH [--resume] [--csv PATH]\n"
         "          [--reps N] [--no-qc] [--dropout X] [--spike X]"
         " [--seed N]\n"
         "          [--attempts N] [--backoff S] [--backoff-mult X]\n"
         "          [--max-backoff S] [--deadline S] [--jitter X]\n"
         "          [--trace PATH] [--metrics]\n"
         "  replay  <artifact.rmea> [--refit] [--csv PATH] [--trace PATH]"
         " [--metrics]\n"
         "  cap     <machine> <watts>\n"
         "  advise  <machine> <flops> <bytes>\n"
         "machines: fermi gtx580-sp gtx580-dp i7-sp i7-dp\n"
         "exit codes: 0 ok, 1 degraded/runtime failure, 2 usage, 3 corrupt"
         " artifact\n";
  return cli::kExitUsage;
}

// Tool-layer observability rig: owns the RealClock + Tracer when
// --trace/--metrics asked for one (rme_cli's analogue of
// bench::BenchObs; see rme/obs/clock.hpp for the layering contract).
class CliObs {
 public:
  CliObs(std::string trace_path, bool metrics)
      : trace_path_(std::move(trace_path)), metrics_(metrics) {
    if (!trace_path_.empty() || metrics_) {
      clock_ = obs::make_real_clock();
      tracer_ = std::make_unique<obs::Tracer>(*clock_);
    }
  }

  [[nodiscard]] obs::Tracer* tracer() noexcept { return tracer_.get(); }

  /// Writes the trace/metrics outputs and folds failures into the
  /// subcommand's exit code.
  [[nodiscard]] int finish(int code) {
    if (tracer_ == nullptr) return code;
    if (!trace_path_.empty() &&
        !obs::write_chrome_trace_file(trace_path_, *tracer_)) {
      std::cerr << "error: cannot write trace file '" << trace_path_ << "'\n";
      if (code == 0) code = 1;
    }
    if (metrics_) obs::write_metrics_summary(std::cerr, tracer_->snapshot());
    return code;
  }

 private:
  std::string trace_path_;
  bool metrics_;
  std::unique_ptr<obs::Clock> clock_;
  std::unique_ptr<obs::Tracer> tracer_;
};

int cmd_machines() {
  report::Table t({"Name", "Description", "B_tau", "B_eps", "eff. balance",
                   "peak GF/s", "peak GF/J"});
  for (const char* name :
       {"fermi", "gtx580-sp", "gtx580-dp", "i7-sp", "i7-dp"}) {
    const MachineParams m = *machine_by_name(name);
    t.add_row({name, m.name, report::fmt(m.time_balance(), 3),
               report::fmt(m.energy_balance(), 3),
               report::fmt(m.balance_fixed_point(), 3),
               report::fmt(m.peak_flops().value() / kGiga, 4),
               report::fmt(m.peak_flops_per_joule().value() / kGiga, 3)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_balance(const MachineParams& m) {
  std::cout << m << "\n\n"
            << "time-balance B_tau      " << m.time_balance() << " flop/B\n"
            << "energy-balance B_eps    " << m.energy_balance() << " flop/B\n"
            << "effective balance       " << m.balance_fixed_point()
            << " flop/B\n"
            << "balance gap             " << m.balance_gap() << "\n"
            << "flop efficiency eta     " << m.flop_efficiency() << "\n"
            << "max power (eq. 8)       " << max_power(m).value() << " W\n\n";
  if (m.time_balance() >= m.balance_fixed_point()) {
    std::cout << "B_tau >= effective balance: time-efficiency implies "
                 "energy-efficiency here;\nrace-to-halt is a sound "
                 "first-order energy strategy (SsII-D, SsV-B).\n";
  } else {
    std::cout << "Effective balance exceeds B_tau: energy-efficiency is "
                 "the harder target;\nexpect genuine time-energy "
                 "trade-offs (SsII-D).\n";
  }
  return 0;
}

int cmd_predict(const MachineParams& m, double flops, double bytes) {
  const KernelProfile k{flops, bytes};
  const double i = k.intensity();
  const TimeBreakdown t = predict_time(m, k);
  const EnergyBreakdown e = predict_energy(m, k);
  report::Table out({"Quantity", "Value"});
  out.add_row({"intensity", report::fmt(i, 4) + " flop/B"});
  out.add_row({"time", report::fmt_si(t.total_seconds.value(), "s")});
  out.add_row({"  bound in time", to_string(time_bound(m, i))});
  out.add_row({"energy", report::fmt_si(e.total_joules.value(), "J")});
  out.add_row({"  flops / mem / const",
               report::fmt_si(e.flops_joules.value(), "J") + " / " +
                   report::fmt_si(e.mem_joules.value(), "J") + " / " +
                   report::fmt_si(e.const_joules.value(), "J")});
  out.add_row({"  bound in energy", to_string(energy_bound(m, i))});
  out.add_row({"avg power", report::fmt(average_power(m, i).value(), 4) + " W"});
  out.add_row({"speed", report::fmt(achieved_flops(m, i).value() / kGiga, 4) +
                            " GFLOP/s (" +
                            report::fmt(100.0 * normalized_speed(m, i), 3) +
                            "% of peak)"});
  out.add_row(
      {"efficiency",
       report::fmt(achieved_flops_per_joule(m, i).value() / kGiga, 4) +
           " GFLOP/J (" +
           report::fmt(100.0 * normalized_efficiency(m, i), 3) +
           "% of peak)"});
  out.print(std::cout);
  if (classifications_disagree(m, i)) {
    std::cout << "\nNote: time and energy classifications DISAGREE at this "
                 "intensity (SsII-D window).\n";
  }
  return 0;
}

int cmd_chart(const MachineParams& m, double lo, double hi) {
  const auto grid = log_intensity_grid(lo, hi, 10);
  report::ChartConfig cfg;
  cfg.height = 16;
  cfg.y_label = "normalized performance (log2)";
  report::AsciiChart chart(cfg);
  chart.add_series({"time roofline", '#', time_roofline(m, grid)});
  chart.add_series({"energy arch line", '*', energy_arch_line(m, grid)});
  chart.add_marker({"B_tau", m.time_balance(), '|'});
  if (m.energy_balance() >= lo && m.energy_balance() <= hi) {
    chart.add_marker({"B_eps", m.energy_balance(), ':'});
  }
  chart.print(std::cout);
  return 0;
}

int cmd_greenup(const MachineParams& m, double intensity, double f,
                double mult) {
  const KernelProfile base = KernelProfile::from_intensity(intensity, 1e9);
  const Transform transform{f, mult};
  const TradeoffBoundaries b = tradeoff_boundaries(m, intensity, mult);
  report::Table t({"Quantity", "Value"});
  t.add_row({"speedup dT", report::fmt(speedup(m, base, transform), 5)});
  t.add_row({"greenup dE", report::fmt(greenup(m, base, transform), 5)});
  t.add_row({"outcome", to_string(classify(m, base, transform))});
  t.add_row({"f bound, eq. (10)", report::fmt(b.f_greenup_eq10, 5)});
  t.add_row({"f bound, exact (pi0 incl.)", report::fmt(b.f_greenup_exact, 5)});
  t.add_row({"f bound, speedup", report::fmt(b.f_speedup, 5)});
  t.add_row({"hard limit (m->inf)",
             report::fmt(greenup_work_limit(m, intensity), 5)});
  t.print(std::cout);
  return 0;
}

int cmd_fit(const std::string& path, const fit::EnergyFitOptions& options,
            std::size_t bootstrap_resamples, unsigned jobs,
            obs::Tracer* tracer) {
  const auto samples = fit::load_samples(path);
  std::cout << "Loaded " << samples.size() << " samples from " << path
            << "\n\n";
  const fit::EnergyFit result =
      fit::fit_energy_coefficients(samples, options, tracer);
  report::Table t({"Coefficient", "Value", "std error", "p-value"});
  const auto row = [&](const char* label, const char* name, double scale,
                       const char* unit) {
    const fit::Coefficient& c = result.regression.by_name(name);
    t.add_row({label, report::fmt(c.value * scale, 5) + std::string(" ") + unit,
               report::fmt(c.std_error * scale, 3),
               report::fmt(c.p_value, 2)});
  };
  row("eps_s", "eps_s", 1e12, "pJ/flop");
  row("delta eps_d", "delta_eps_d", 1e12, "pJ/flop");
  row("eps_mem", "eps_mem", 1e12, "pJ/B");
  row("pi0", "pi0", 1.0, "W");
  t.print(std::cout);
  std::cout << "\neps_d = "
            << report::fmt(result.coefficients.eps_double().value() * 1e12, 5)
            << " pJ/flop, R^2 = "
            << report::fmt(result.regression.r_squared, 6) << "\n";
  if (result.method == fit::FitMethod::kHuber) {
    std::size_t down = 0;
    for (double w : result.weights) {
      if (w < 1.0) ++down;
    }
    std::cout << "Huber IRLS: " << down << "/" << result.weights.size()
              << " samples down-weighted, robust scale = "
              << report::fmt(result.robust_scale, 4)
              << (result.converged ? "" : " (NOT converged)") << "\n";
  }
  if (bootstrap_resamples > 0) {
    const fit::CoefficientCis cis = fit::bootstrap_coefficient_cis(
        samples, options, bootstrap_resamples, /*seed=*/1,
        /*confidence=*/0.95, jobs, tracer);
    std::cout << "\nBootstrap 95% percentile CIs (" << bootstrap_resamples
              << " resamples, " << cis.eps_single.failures
              << " singular draws skipped):\n";
    report::Table ci({"Coefficient", "mean", "CI lo", "CI hi", "std error"});
    const auto ci_row = [&](const char* label, const fit::BootstrapEstimate& e,
                            double scale) {
      ci.add_row({label, report::fmt(e.mean * scale, 5),
                  report::fmt(e.ci_lo * scale, 5),
                  report::fmt(e.ci_hi * scale, 5),
                  report::fmt(e.std_error * scale, 3)});
    };
    ci_row("eps_s [pJ/flop]", cis.eps_single, 1e12);
    ci_row("eps_d [pJ/flop]", cis.eps_double, 1e12);
    ci_row("eps_mem [pJ/B]", cis.eps_mem, 1e12);
    ci_row("pi0 [W]", cis.const_power, 1.0);
    ci.print(std::cout);
  }
  return 0;
}

// Fault-injection study: the full hardened pipeline on one machine pair.
int cmd_faults(const std::string& base, double dropout, double spike,
               std::size_t reps, unsigned jobs, obs::Tracer* tracer) {
  const bool is_i7 = base == "i7";
  if (!is_i7 && base != "gtx580") {
    std::cerr << "unknown platform '" << base << "' (want i7 or gtx580)\n";
    return usage();
  }
  if (!(dropout >= 0.0 && dropout <= 1.0) ||
      !(spike >= 0.0 && spike <= 1.0)) {
    std::cerr << "fault rates must be probabilities in [0, 1]\n";
    return usage();
  }

  sim::FaultProfile profile;
  profile.sample_dropout_rate = dropout;
  profile.spike_rate = spike;
  profile.spike_gain_min = 6.0;
  profile.spike_gain_max = 24.0;

  const auto session = [&](Precision p, bool faulty, bool with_qc) {
    const MachineParams m =
        is_i7 ? presets::i7_950(p) : presets::gtx580(p);
    sim::SimConfig sim_cfg;
    sim_cfg.noise = sim::NoiseModel(0xA11CE, 0.01);
    power::PowerMonConfig mon_cfg;
    mon_cfg.sample_hz = Hertz{128.0};
    power::SessionConfig ses_cfg;
    ses_cfg.repetitions = reps;
    ses_cfg.qc.enabled = with_qc;
    return power::MeasurementSession(
        sim::Executor(m, sim_cfg),
        power::PowerMon(
            is_i7 ? power::atx_cpu_rails() : power::gtx580_rails(), mon_cfg,
            sim::FaultInjector(faulty ? profile : sim::FaultProfile{},
                               0xFA117)),
        ses_cfg);
  };

  // Short kernels across the Fig. 4 intensity grid, cycling duration
  // tiers (see bench_ablation_faults for the regime rationale).
  const auto sweep = [&](Precision p) {
    constexpr double kTierSeconds[] = {0.018, 0.030, 0.050};
    const MachineParams m = is_i7 ? presets::i7_950(p) : presets::gtx580(p);
    const double hi = p == Precision::kSingle ? 64.0 : 16.0;
    std::vector<sim::KernelDesc> kernels;
    std::size_t tier = 0;
    for (const double intensity : sim::pow2_grid(0.25, hi)) {
      const TimePerByte sec_per_byte =
          max(m.time_per_byte, Intensity{intensity} * m.time_per_flop);
      const double words =
          kTierSeconds[tier++ % 3] / sec_per_byte.value() / word_bytes(p);
      kernels.push_back(sim::fma_load_mix(intensity, words, p));
    }
    return kernels;
  };

  power::SessionQuality quality;
  const auto collect = [&](bool faulty, bool with_qc) {
    std::vector<fit::EnergySample> samples;
    for (const Precision p : {Precision::kSingle, Precision::kDouble}) {
      const auto ses = session(p, faulty, with_qc);
      for (const auto& r : ses.measure_sweep(sweep(p), jobs, tracer)) {
        if (with_qc) {
          quality.reps_attempted += r.quality.reps_attempted;
          quality.reps_retried += r.quality.reps_retried;
          quality.reps_kept_degraded += r.quality.reps_kept_degraded;
          quality.reps_discarded += r.quality.reps_discarded;
          quality.reps_discarded_outlier += r.quality.reps_discarded_outlier;
          quality.dropped_samples += r.quality.dropped_samples;
          quality.saturated_samples += r.quality.saturated_samples;
        }
        for (const auto& rep : r.reps) {
          if (rep.outlier) continue;
          samples.push_back(fit::EnergySample{r.kernel.flops, r.kernel.bytes,
                                              rep.seconds, rep.joules, p});
        }
      }
    }
    return samples;
  };

  fit::EnergyFitOptions ols_opts;
  ols_opts.relative_error = true;
  fit::EnergyFitOptions huber_opts = ols_opts;
  huber_opts.method = fit::FitMethod::kHuber;

  const auto clean =
      fit::fit_energy_coefficients(collect(false, false), ols_opts, tracer);
  const auto raw = collect(true, false);
  const auto ols = fit::fit_energy_coefficients(raw, ols_opts, tracer);
  const auto huber = fit::fit_energy_coefficients(raw, huber_opts, tracer);
  const auto qc =
      fit::fit_energy_coefficients(collect(true, true), ols_opts, tracer);

  std::cout << "Fault profile: " << report::fmt(100.0 * dropout, 3)
            << "% sample dropout, " << report::fmt(100.0 * spike, 3)
            << "% transient spikes, " << reps << " reps/kernel\n"
            << "Session QC: " << quality.reps_attempted << " attempts, "
            << quality.reps_retried << " retried, "
            << quality.reps_kept_degraded << " kept degraded, "
            << quality.reps_discarded_outlier << " MAD-rejected, "
            << quality.dropped_samples << " samples dropped, "
            << quality.saturated_samples << " saturated\n\n";

  report::Table t({"estimator", "eps_s [pJ/flop]", "eps_d [pJ/flop]",
                   "eps_mem [pJ/B]", "pi0 [W]"});
  const auto row = [&](const char* label, const fit::EnergyFit& f) {
    t.add_row({label,
               report::fmt(f.coefficients.eps_single.value() * 1e12, 4),
               report::fmt(f.coefficients.eps_double().value() * 1e12, 4),
               report::fmt(f.coefficients.eps_mem.value() * 1e12, 4),
               report::fmt(f.coefficients.const_power.value(), 4)});
  };
  row("clean OLS", clean);
  row("faulty OLS", ols);
  row("faulty Huber", huber);
  row("faulty OLS + QC", qc);
  t.print(std::cout);
  return 0;
}

int cmd_advise(const MachineParams& m, double flops, double bytes) {
  const Advice a = advise(m, KernelProfile{flops, bytes});
  report::Table t({"Quantity", "Value"});
  t.add_row({"intensity", report::fmt(a.intensity, 4) + " flop/B"});
  t.add_row({"bound in time", to_string(a.bound_in_time)});
  t.add_row({"bound in energy", to_string(a.bound_in_energy)});
  t.add_row({"speed", report::fmt(100.0 * a.speed_fraction, 3) +
                          "% of peak (headroom " +
                          report::fmt(a.speed_headroom, 3) + "x)"});
  t.add_row({"efficiency", report::fmt(100.0 * a.efficiency_fraction, 3) +
                               "% of peak (headroom " +
                               report::fmt(a.efficiency_headroom, 3) + "x)"});
  t.add_row({"I for 90% speed",
             report::fmt(a.intensity_for_target_speed, 4)});
  t.add_row({"I for 90% efficiency",
             report::fmt(a.intensity_for_target_efficiency, 4)});
  t.add_row({"harder goal (milestones)", to_string(a.harder_goal)});
  t.print(std::cout);
  std::cout << "\n" << a.summary << "\n";
  return 0;
}

int cmd_sweep(const MachineParams& m, double lo, double hi, unsigned jobs,
              obs::Tracer* tracer) {
  report::Table t({"I (flop:B)", "speed (rel.)", "GFLOP/s",
                   "efficiency (rel.)", "GFLOP/J", "power [W]"});
  std::vector<double> grid;
  for (double i = lo; i <= hi * (1.0 + 1e-12); i *= 2.0) grid.push_back(i);
  // Rows are computed in parallel but appended in grid order, so the
  // table is byte-identical for every --jobs value.
  const auto rows = exec::parallel_map_items(
      grid,
      // rme-cold: formatting the rows IS the deliverable of this command
      [&](double i) {
        return std::vector<std::string>{
            report::fmt(i, 4), report::fmt(normalized_speed(m, i), 3),
            report::fmt(achieved_flops(m, i).value() / kGiga, 4),
            report::fmt(normalized_efficiency(m, i), 3),
            report::fmt(achieved_flops_per_joule(m, i).value() / kGiga, 3),
            report::fmt(average_power(m, i).value(), 4)};
      },
      jobs, tracer);
  for (const auto& row : rows) t.add_row(row);
  t.print(std::cout);
  std::cout << "\nB_tau = " << m.time_balance()
            << ", effective energy balance = " << m.balance_fixed_point()
            << ", max power = " << max_power(m).value() << " W\n";
  return 0;
}

// Artifact capture/resume sweep: `sweep <platform> --artifact PATH`.
// All heavy lifting lives in rme::artifact (replay.hpp); this parser
// only builds the requested header and rejects flag combinations that
// would contradict a resumed header.
int cmd_artifact_sweep(const std::vector<std::string>& args) {
  artifact::ArtifactHeader header;
  artifact::SweepOptions options;
  header.repetitions = 12;
  bool config_flag_seen = false;
  bool metrics = false;
  std::string trace_path;
  std::vector<std::string> positional;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw cli::UsageError("flag '" + flag + "' needs a value");
      }
      return args[++i];
    };
    if (flag == "--artifact") {
      options.artifact_path = value();
    } else if (flag == "--resume") {
      options.resume = true;
    } else if (flag == "--csv") {
      options.csv_path = value();
    } else if (flag == "--reps") {
      header.repetitions = cli::parse_size(value().c_str(), "--reps");
      config_flag_seen = true;
    } else if (flag == "--no-qc") {
      header.qc = false;
      config_flag_seen = true;
    } else if (flag == "--dropout") {
      header.dropout = cli::parse_double(value().c_str(), "--dropout");
      config_flag_seen = true;
    } else if (flag == "--spike") {
      header.spike = cli::parse_double(value().c_str(), "--spike");
      config_flag_seen = true;
    } else if (flag == "--seed") {
      header.fault_seed = cli::parse_size(value().c_str(), "--seed");
      config_flag_seen = true;
    } else if (flag == "--attempts") {
      header.retry.max_attempts =
          cli::parse_size(value().c_str(), "--attempts");
      config_flag_seen = true;
    } else if (flag == "--backoff") {
      header.retry.initial_backoff =
          Seconds{cli::parse_double(value().c_str(), "--backoff")};
      config_flag_seen = true;
    } else if (flag == "--backoff-mult") {
      header.retry.backoff_multiplier =
          cli::parse_double(value().c_str(), "--backoff-mult");
      config_flag_seen = true;
    } else if (flag == "--max-backoff") {
      header.retry.max_backoff =
          Seconds{cli::parse_double(value().c_str(), "--max-backoff")};
      config_flag_seen = true;
    } else if (flag == "--deadline") {
      header.retry.step_deadline =
          Seconds{cli::parse_double(value().c_str(), "--deadline")};
      config_flag_seen = true;
    } else if (flag == "--jitter") {
      header.retry.jitter = cli::parse_double(value().c_str(), "--jitter");
      config_flag_seen = true;
    } else if (flag == "--metrics") {
      metrics = true;
    } else if (flag == "--trace") {
      trace_path = value();
    } else if (flag == "--chaos-kill-after") {
      // Test-harness hook (tests/chaos_runner.cpp): terminate the
      // process abruptly once the artifact holds this many records.
      options.chaos.kill_after_records = static_cast<long long>(
          cli::parse_size(value().c_str(), "--chaos-kill-after"));
    } else if (flag == "--chaos-tear") {
      options.chaos.tear = true;
    } else if (!flag.empty() && flag.front() == '-') {
      std::cerr << "unknown sweep flag '" << flag << "'\n";
      return usage();
    } else {
      positional.push_back(flag);
    }
  }

  if (options.artifact_path.empty()) {
    std::cerr << "artifact sweep needs --artifact PATH\n";
    return usage();
  }
  if (positional.size() > 1) {
    std::cerr << "artifact sweep takes at most one platform argument\n";
    return usage();
  }
  if (!positional.empty()) header.platform = positional.front();
  if (options.resume && config_flag_seen) {
    std::cerr << "config flags conflict with --resume (the run is "
                 "re-derived from the artifact header)\n";
    return usage();
  }
  if (!options.resume && header.platform.empty()) {
    std::cerr << "artifact sweep needs a platform (i7 or gtx580)\n";
    return usage();
  }
  if (!header.platform.empty() &&
      !artifact::valid_platform(header.platform)) {
    std::cerr << "unknown platform '" << header.platform
              << "' (want i7 or gtx580)\n";
    return usage();
  }
  if (header.retry.max_attempts == 0) {
    std::cerr << "--attempts must be at least 1\n";
    return usage();
  }
  CliObs rig(trace_path, metrics);
  options.tracer = rig.tracer();
  return rig.finish(
      artifact::run_capture_sweep(header, options, std::cout, std::cerr));
}

int cmd_replay(const std::vector<std::string>& args) {
  artifact::ReplayOptions options;
  bool metrics = false;
  std::string trace_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--refit") {
      options.refit = true;
    } else if (flag == "--csv" && i + 1 < args.size()) {
      options.csv_path = args[++i];
    } else if (flag == "--metrics") {
      metrics = true;
    } else if (flag == "--trace" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (!flag.empty() && flag.front() == '-') {
      std::cerr << "unknown replay flag '" << flag << "'\n";
      return usage();
    } else if (options.artifact_path.empty()) {
      options.artifact_path = flag;
    } else {
      std::cerr << "replay takes exactly one artifact path\n";
      return usage();
    }
  }
  if (options.artifact_path.empty()) {
    std::cerr << "replay needs an artifact path\n";
    return usage();
  }
  CliObs rig(trace_path, metrics);
  options.tracer = rig.tracer();
  return rig.finish(artifact::run_replay(options, std::cout, std::cerr));
}

int cmd_cap(const MachineParams& m, Watts cap) {
  const double onset = cap_violation_onset(m, cap);
  std::cout << "cap " << cap.value() << " W on " << m.name << ": ";
  if (onset < 0.0) {
    std::cout << "never binds (max model power " << max_power(m).value()
              << " W)\n";
    return 0;
  }
  std::cout << "binds from I ~ " << onset << " flop/B\n\n";
  report::Table t({"I (flop:B)", "throttle scale", "capped GFLOP/s",
                   "energy overhead"});
  for (double i = 0.25; i <= 256.0; i *= 4.0) {
    const KernelProfile k = KernelProfile::from_intensity(i, 1e9);
    const CappedRun r = run_with_cap(m, k, cap);
    if (!r.feasible) {
      t.add_row({report::fmt(i, 4), "0", "-", "inf"});
      continue;
    }
    t.add_row({report::fmt(i, 4), report::fmt(r.scale, 3),
               report::fmt((k.work() / r.seconds).value() / kGiga, 4),
               report::fmt(r.joules / predict_energy(m, k).total_joules, 4)});
  }
  t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "machines") return cmd_machines();
    if (command == "fit") {
      if (argc < 3) return usage();
      fit::EnergyFitOptions options;
      std::size_t bootstrap_resamples = 0;
      unsigned jobs = 1;
      std::string trace_path;
      bool metrics = false;
      for (int i = 3; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--huber") {
          options.method = fit::FitMethod::kHuber;
        } else if (flag == "--relative") {
          options.relative_error = true;
        } else if (flag == "--bootstrap" && i + 1 < argc) {
          bootstrap_resamples = cli::parse_size(argv[++i], "--bootstrap");
        } else if (flag == "--jobs" && i + 1 < argc) {
          jobs = cli::parse_unsigned32(argv[++i], "--jobs");
        } else if (flag == "--trace" && i + 1 < argc) {
          trace_path = argv[++i];
        } else if (flag == "--metrics") {
          metrics = true;
        } else {
          std::cerr << "unknown fit flag '" << flag << "'\n";
          return usage();
        }
      }
      CliObs cli_obs(trace_path, metrics);
      return cli_obs.finish(cmd_fit(argv[2], options, bootstrap_resamples,
                                    jobs, cli_obs.tracer()));
    }
    if (command == "faults") {
      if (argc < 3) return usage();
      std::vector<const char*> positional;
      unsigned jobs = 1;
      std::string trace_path;
      bool metrics = false;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
          jobs = cli::parse_unsigned32(argv[++i], "--jobs");
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
          trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
          metrics = true;
        } else {
          positional.push_back(argv[i]);
        }
      }
      const double dropout =
          positional.size() > 0 ? cli::parse_double(positional[0], "dropout")
                                : 0.05;
      const double spike =
          positional.size() > 1 ? cli::parse_double(positional[1], "spike")
                                : 0.01;
      const std::size_t reps =
          positional.size() > 2 ? cli::parse_size(positional[2], "reps") : 16;
      CliObs cli_obs(trace_path, metrics);
      return cli_obs.finish(
          cmd_faults(argv[2], dropout, spike, reps, jobs, cli_obs.tracer()));
    }
    if (command == "replay") {
      return cmd_replay(std::vector<std::string>(argv + 2, argv + argc));
    }
    if (command == "sweep") {
      // `sweep ... --artifact PATH` is the capture/resume journal mode
      // (platform-keyed, optional under --resume); without --artifact
      // the classic model sweep below handles it.
      const std::vector<std::string> args(argv + 2, argv + argc);
      for (const std::string& a : args) {
        if (a == "--artifact") return cmd_artifact_sweep(args);
      }
    }
    // Remaining commands start with a machine name.
    if (argc < 3) return usage();
    const auto machine = machine_by_name(argv[2]);
    if (!machine) {
      std::cerr << "unknown machine '" << argv[2] << "'\n";
      return usage();
    }
    if (command == "balance") return cmd_balance(*machine);
    if (command == "predict" && argc >= 5) {
      return cmd_predict(*machine, cli::parse_double(argv[3], "flops"),
                         cli::parse_double(argv[4], "bytes"));
    }
    if (command == "chart") {
      const double lo = argc > 3 ? cli::parse_double(argv[3], "lo") : 0.25;
      const double hi = argc > 4 ? cli::parse_double(argv[4], "hi") : 64.0;
      return cmd_chart(*machine, lo, hi);
    }
    if (command == "sweep") {
      std::vector<const char*> positional;
      unsigned jobs = 1;
      std::string trace_path;
      bool metrics = false;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
          jobs = cli::parse_unsigned32(argv[++i], "--jobs");
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
          trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
          metrics = true;
        } else {
          positional.push_back(argv[i]);
        }
      }
      const double lo =
          positional.size() > 0 ? cli::parse_double(positional[0], "lo")
                                : 0.25;
      const double hi =
          positional.size() > 1 ? cli::parse_double(positional[1], "hi")
                                : 64.0;
      CliObs cli_obs(trace_path, metrics);
      return cli_obs.finish(
          cmd_sweep(*machine, lo, hi, jobs, cli_obs.tracer()));
    }
    if (command == "cap" && argc >= 4) {
      return cmd_cap(*machine, Watts{cli::parse_double(argv[3], "watts")});
    }
    if (command == "advise" && argc >= 5) {
      return cmd_advise(*machine, cli::parse_double(argv[3], "flops"),
                        cli::parse_double(argv[4], "bytes"));
    }
    if (command == "greenup" && argc >= 6) {
      return cmd_greenup(*machine, cli::parse_double(argv[3], "I"),
                         cli::parse_double(argv[4], "f"),
                         cli::parse_double(argv[5], "m"));
    }
  } catch (const cli::UsageError& err) {
    std::cerr << "error: " << err.what() << "\n";
    return usage();
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return cli::kExitDegraded;
  }
  return usage();
}
