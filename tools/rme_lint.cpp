// rme_lint: enforce the dimensional-safety boundary of units.hpp.
//
// Scans header files for raw `double` declarations whose names carry a
// unit suffix (_seconds, _joules, _watts, _volts, _amps, _hz, _per_flop,
// _per_byte).  Such names promise a dimension the type system cannot
// check; the fix is to use the matching Quantity alias (Seconds, Joules,
// Watts, ...) from rme/core/units.hpp, keeping `.value()` escape hatches
// inside numeric kernels only.
//
// A finding is suppressed when the flagged line, or the line directly
// above it, contains `rme-lint: allow(<reason>)`.  The reason is
// mandatory by convention: it documents why the value stays outside the
// dimension algebra (e.g. volts/amps, host wall-clock statistics).
//
// Usage:  rme_lint <dir-or-file>...
// Exit status: 0 when clean, 1 when any finding remains, 2 on bad usage.

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string name;
  std::string text;
};

bool is_header(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".hh";
}

bool is_comment_line(const std::string& line) {
  const auto first = line.find_first_not_of(" \t");
  if (first == std::string::npos) return false;
  return line.compare(first, 2, "//") == 0 ||
         line.compare(first, 2, "/*") == 0 ||
         line.compare(first, 1, "*") == 0;
}

bool has_allow(const std::string& line) {
  return line.find("rme-lint: allow(") != std::string::npos;
}

void scan_file(const fs::path& path, const std::regex& pattern,
               std::vector<Finding>& findings) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "rme_lint: cannot open " << path.string() << "\n";
    return;
  }
  std::string line;
  std::string prev;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const bool suppressed = has_allow(line) || has_allow(prev);
    prev = line;
    if (suppressed || is_comment_line(line)) continue;
    auto begin = std::sregex_iterator(line.begin(), line.end(), pattern);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      // Ignore matches that sit inside a trailing // comment.
      const auto comment = line.find("//");
      if (comment != std::string::npos &&
          static_cast<std::size_t>(it->position()) > comment) {
        continue;
      }
      findings.push_back(Finding{path.string(), lineno, (*it)[1].str(), line});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: rme_lint <dir-or-file>...\n";
    return 2;
  }

  // `double` followed by a name ending in a unit suffix (optionally with
  // a member trailing underscore).  Catches members, parameters, and
  // getter declarations alike.
  const std::regex pattern(
      R"(\bdouble\s+([A-Za-z_][A-Za-z0-9_]*)"
      R"((?:_seconds|_joules|_watts|_volts|_amps|_hz|_per_flop|_per_byte)_?)\b)");

  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path root(argv[i]);
    if (!fs::exists(root)) {
      std::cerr << "rme_lint: no such path: " << root.string() << "\n";
      return 2;
    }
    if (fs::is_regular_file(root)) {
      ++files_scanned;
      scan_file(root, pattern, findings);
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file() || !is_header(entry.path())) continue;
      ++files_scanned;
      scan_file(entry.path(), pattern, findings);
    }
  }

  for (const auto& f : findings) {
    std::cerr << f.file << ":" << f.line << ": raw double '" << f.name
              << "' has a unit-suffixed name; use the typed quantity from "
                 "rme/core/units.hpp or add '// rme-lint: allow(reason)'\n"
              << "    " << f.text << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "rme_lint: " << findings.size() << " finding(s) across "
              << files_scanned << " header(s)\n";
    return 1;
  }
  std::cout << "rme_lint: clean (" << files_scanned << " headers scanned)\n";
  return 0;
}
