# ctest helper: the rme_analyze report must be byte-identical at
# --jobs=1 and --jobs=4.  Runs the analyzer twice over the real tree in
# JSON mode (stdout regardless of findings) and diffs the bytes.
# Variables: ANALYZER, SOURCE_DIR, WORK_DIR.

set(paths ${SOURCE_DIR}/src ${SOURCE_DIR}/tools ${SOURCE_DIR}/bench
    ${SOURCE_DIR}/tests)

execute_process(
  COMMAND ${ANALYZER} --jobs=1 --format=json ${paths}
  OUTPUT_FILE ${WORK_DIR}/analyze_jobs1.json
  RESULT_VARIABLE rc1)
execute_process(
  COMMAND ${ANALYZER} --jobs=4 --format=json ${paths}
  OUTPUT_FILE ${WORK_DIR}/analyze_jobs4.json
  RESULT_VARIABLE rc4)

# Exit 0 (clean) and 1 (findings) are both legitimate analyzer results
# here — the baseline-gated rme_analyze.project test owns cleanliness;
# this test owns determinism.  2 means the run itself broke.
if(rc1 GREATER 1 OR rc4 GREATER 1)
  message(FATAL_ERROR "rme_analyze failed: --jobs=1 rc=${rc1}, "
          "--jobs=4 rc=${rc4}")
endif()
if(NOT rc1 EQUAL rc4)
  message(FATAL_ERROR "exit status differs: --jobs=1 rc=${rc1}, "
          "--jobs=4 rc=${rc4}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/analyze_jobs1.json ${WORK_DIR}/analyze_jobs4.json
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "rme_analyze output differs between --jobs=1 and "
          "--jobs=4 (see ${WORK_DIR}/analyze_jobs{1,4}.json)")
endif()
