// rme_served — the roofline-model-as-a-service daemon.
//
// Loads the machine presets once, then answers newline-delimited JSON
// requests (docs/SERVE.md): predict, rank, whatif, ingest, plus the
// operational stats and shutdown endpoints.
//
//   rme_served --pipe [options]
//       Serve stdin/stdout.  No networking: this is the transport the
//       conformance corpus, the determinism proofs, and the soak test
//       drive, and it composes with shell pipelines.
//   rme_served --socket PATH [options]
//       Serve an AF_UNIX stream socket at PATH, one connection at a
//       time, until a `shutdown` frame drains the daemon.
//
// Options:
//   --jobs N           parallelism *within* one batch (0 = hardware
//                      concurrency; responses are byte-identical for
//                      every N — the rme::exec determinism contract)
//   --max-batch N      largest accepted batch/variants array (default
//                      1024; larger batches get an over_capacity error)
//   --queue-limit N    bounded ingress queue depth (default 64; 0 sheds
//                      every frame — useful to probe client back-off)
//   --retry-after MS   the retry hint carried by overloaded responses
//                      (default 50)
//   --chaos-full-at N  deterministic backpressure hook: treat the queue
//                      as full at 0-based frame index N (the serve twin
//                      of the artifact chaos kill hooks; used by tests)
//   --trace PATH       write a Chrome trace-event JSON of the serve run
//   --metrics          print the rme::obs summary (per-endpoint latency
//                      histograms under span:serve.<op>) to stderr
//
// At exit the daemon prints one machine-parsable summary line to
// stderr:
//   serve: frames=N responses=N errors=N stalls=N gen=G arena=B
// The soak harness asserts stalls=0 and a monotonic gen off this line.
//
// Exit codes (rme/cli/exit_codes.hpp): 0 ok, 1 runtime failure
// (unwritable trace file, socket error), 2 usage.

#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "rme/rme.hpp"

using namespace rme;

namespace {

int usage() {
  std::cerr
      << "usage: rme_served (--pipe | --socket PATH) [options]\n"
         "  --jobs N           within-batch parallelism (0 = hardware)\n"
         "  --max-batch N      largest accepted batch (default 1024)\n"
         "  --queue-limit N    ingress queue bound (default 64)\n"
         "  --retry-after MS   overload retry hint (default 50)\n"
         "  --chaos-full-at N  reject frame N with `overloaded` (tests)\n"
         "  --trace PATH       write Chrome trace JSON\n"
         "  --metrics          print obs summary to stderr\n"
         "exit codes: 0 ok, 1 runtime failure, 2 usage\n";
  return cli::kExitUsage;
}

// Tool-layer observability rig (the rme_cli CliObs idiom): owns the
// RealClock + Tracer when --trace/--metrics asked for one.
class ServeObs {
 public:
  ServeObs(std::string trace_path, bool metrics)
      : trace_path_(std::move(trace_path)), metrics_(metrics) {
    if (!trace_path_.empty() || metrics_) {
      clock_ = obs::make_real_clock();
      tracer_ = std::make_unique<obs::Tracer>(*clock_);
    }
  }

  [[nodiscard]] obs::Tracer* tracer() noexcept { return tracer_.get(); }

  [[nodiscard]] int finish(int code) {
    if (tracer_ == nullptr) return code;
    if (!trace_path_.empty() &&
        !obs::write_chrome_trace_file(trace_path_, *tracer_)) {
      std::cerr << "error: cannot write trace file '" << trace_path_
                << "'\n";
      if (code == 0) code = cli::kExitDegraded;
    }
    if (metrics_) obs::write_metrics_summary(std::cerr, tracer_->snapshot());
    return code;
  }

 private:
  std::string trace_path_;
  bool metrics_;
  std::unique_ptr<obs::Clock> clock_;
  std::unique_ptr<obs::Tracer> tracer_;
};

}  // namespace

int main(int argc, char** argv) {
  bool pipe_mode = false;
  std::string socket_path;
  std::string trace_path;
  bool metrics = false;
  serve::ServerOptions options;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&](const char* flag) -> std::string {
        if (i + 1 >= argc) {
          throw cli::UsageError(std::string(flag) + " needs a value");
        }
        return argv[++i];
      };
      if (arg == "--pipe") {
        pipe_mode = true;
      } else if (arg == "--socket") {
        socket_path = value("--socket");
      } else if (arg == "--jobs") {
        options.jobs = cli::parse_unsigned32(value("--jobs"), "--jobs");
      } else if (arg == "--max-batch") {
        options.max_batch =
            cli::parse_size(value("--max-batch"), "--max-batch");
        if (options.max_batch == 0) {
          throw cli::UsageError("--max-batch must be >= 1");
        }
      } else if (arg == "--queue-limit") {
        options.queue_limit =
            cli::parse_size(value("--queue-limit"), "--queue-limit");
      } else if (arg == "--retry-after") {
        options.retry_after_ms = static_cast<std::int64_t>(
            cli::parse_size(value("--retry-after"), "--retry-after"));
      } else if (arg == "--chaos-full-at") {
        options.chaos_full_at = static_cast<long long>(
            cli::parse_size(value("--chaos-full-at"), "--chaos-full-at"));
      } else if (arg == "--trace") {
        trace_path = value("--trace");
      } else if (arg == "--metrics") {
        metrics = true;
      } else {
        throw cli::UsageError("unknown flag '" + arg + "'");
      }
    }
    if (pipe_mode == !socket_path.empty()) {
      throw cli::UsageError(
          "exactly one of --pipe / --socket PATH is required");
    }
  } catch (const cli::UsageError& err) {
    std::cerr << "error: " << err.what() << "\n";
    return usage();
  }

  ServeObs obs_rig(trace_path, metrics);
  options.tracer = obs_rig.tracer();

  int code = cli::kExitOk;
  serve::Server server(options);
  serve::ServeStats stats;
  try {
    if (pipe_mode) {
      stats = server.serve_stream(std::cin, std::cout);
    } else {
      stats = server.serve_unix(socket_path);
    }
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    code = cli::kExitDegraded;
  }

  const serve::EngineStats engine_stats = server.engine().stats();
  std::cerr << "serve: frames=" << stats.frames_in
            << " responses=" << stats.responses
            << " errors=" << engine_stats.errors
            << " stalls=" << engine_stats.queue_stalls
            << " gen=" << engine_stats.generation
            << " arena=" << stats.arena_high_water << "\n";

  return obs_rig.finish(code);
}
