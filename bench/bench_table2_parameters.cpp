// Reproduces Table II: sample model parameters for the NVIDIA Fermi GPU
// (Keckler et al. numbers) and the derived balance points, plus the
// full Table I-style derived-quantity listing for all preset platforms.

#include <iostream>

#include "bench_common.hpp"

using namespace rme;

int main() {
  bench::print_heading(
      "Table II: sample model parameters (NVIDIA Fermi, Keckler et al.)");

  const MachineParams fermi = presets::fermi_table2();
  {
    report::Table t({"Variable", "Paper value", "This library"});
    t.add_row({"tau_flop", "(515 Gflop/s)^-1 ~ 1.9 ps/flop",
               report::fmt_si(fermi.time_per_flop.value(), "s/flop")});
    t.add_row({"tau_mem", "(144 GB/s)^-1 ~ 6.9 ps/byte",
               report::fmt_si(fermi.time_per_byte.value(), "s/B")});
    t.add_row({"B_tau", "6.9/1.9 ~ 3.6 flop/B",
               report::fmt(fermi.time_balance(), 3) + " flop/B"});
    t.add_row({"eps_flop", "~25 pJ/flop",
               report::fmt_si(fermi.energy_per_flop.value(), "J/flop")});
    t.add_row({"eps_mem", "~360 pJ/byte",
               report::fmt_si(fermi.energy_per_byte.value(), "J/B")});
    t.add_row({"B_eps", "360/25 = 14.4 flop/B",
               report::fmt(fermi.energy_balance(), 3) + " flop/B"});
    t.print(std::cout);
  }

  bench::print_heading("Derived quantities (Table I) for every preset");
  {
    report::Table t({"Machine", "B_tau", "B_eps", "B-hat fix pt", "eta_flop",
                     "pi_flop [W]", "peak GF/s", "peak GB/s", "peak GF/J",
                     "gap B_eps/B_tau"});
    const auto add = [&](const MachineParams& m) {
      t.add_row({m.name, report::fmt(m.time_balance(), 3),
                 report::fmt(m.energy_balance(), 3),
                 report::fmt(m.balance_fixed_point(), 3),
                 report::fmt(m.flop_efficiency(), 3),
                 report::fmt(m.flop_power().value(), 4),
                 report::fmt(m.peak_flops().value() / kGiga, 4),
                 report::fmt(m.peak_bandwidth().value() / kGiga, 4),
                 report::fmt(m.peak_flops_per_joule().value() / kGiga, 3),
                 report::fmt(m.balance_gap(), 3)});
    };
    add(fermi);
    add(presets::gtx580(Precision::kSingle));
    add(presets::gtx580(Precision::kDouble));
    add(presets::i7_950(Precision::kSingle));
    add(presets::i7_950(Precision::kDouble));
    t.print(std::cout);
  }

  std::cout << "\nPaper cross-check: the Fig. 4 annotations (B_tau, B_eps "
               "with const=0, and the\ntrue effective balance point at "
               "y=1/2) derive from Tables III+IV via eq. (6):\n"
               "  GTX 580 double: 1.0 / 2.4 / 0.79   GTX 580 single: "
               "8.2 / 5.1 / 4.5\n"
               "  i7-950  double: 2.1 / 1.2 / 1.1    i7-950  single: "
               "4.2 / 2.1 / 2.1\n";
  return 0;
}
