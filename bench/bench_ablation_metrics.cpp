// Ablation: optimization-metric choice (§VI "Metrics").  For each
// metric (time, energy, EDP, ED²P) report the DVFS operating point it
// prefers across kernel intensities, and the intensity each metric
// needs to reach 90% of its best — the balance gap expressed as a
// locality requirement.

#include <iostream>

#include "bench_common.hpp"

using namespace rme;

int main() {
  bench::print_heading(
      "Ablation: metric choice (time / energy / EDP / ED2P), i7-950 double");

  const MachineParams m = presets::i7_950(Precision::kDouble);
  const DvfsModel dvfs;

  {
    report::Table t({"kernel I (flop:B)", "time-opt f", "energy-opt f",
                     "EDP-opt f", "ED2P-opt f"});
    for (double rel : {1.0 / 16.0, 0.5, 1.0, 4.0, 16.0}) {
      const double i = rel * m.time_balance();
      const KernelProfile k = KernelProfile::from_intensity(i, 1e9);
      DvfsModel model = dvfs;
      model.min_ratio = 0.5;
      t.add_row(
          {report::fmt(i, 3),
           report::fmt(
               metric_optimal_frequency(Metric::kTime, m, model, k).ratio, 3),
           report::fmt(
               metric_optimal_frequency(Metric::kEnergy, m, model, k).ratio,
               3),
           report::fmt(
               metric_optimal_frequency(Metric::kEdp, m, model, k).ratio, 3),
           report::fmt(
               metric_optimal_frequency(Metric::kEd2p, m, model, k).ratio,
               3)});
    }
    t.print(std::cout);
    std::cout << "\nWith today's 122 W constant power every metric agrees "
                 "on f_max for compute-bound\nkernels (race-to-halt); for "
                 "memory-bound kernels time is indifferent while the\n"
                 "energy-leaning metrics clock down.\n\n";
  }

  {
    std::cout << "Intensity needed to reach 90% of each metric's best "
                 "(per machine):\n";
    report::Table t({"Machine", "time", "energy", "EDP"});
    for (const MachineParams& machine :
         {presets::fermi_table2(), presets::gtx580(Precision::kDouble),
          presets::i7_950(Precision::kDouble)}) {
      t.add_row(
          {machine.name,
           report::fmt(intensity_for_fraction(Metric::kTime, machine, 0.9),
                       3),
           report::fmt(
               intensity_for_fraction(Metric::kEnergy, machine, 0.9), 3),
           report::fmt(intensity_for_fraction(Metric::kEdp, machine, 0.9),
                       3)});
    }
    t.print(std::cout);
    std::cout << "\nOn the pi0 = 0 Fermi (B_eps = 4x B_tau) the energy "
                 "target needs ~36x the\nintensity the time target needs — "
                 "the balance gap as an algorithm-design burden\n(SsII-D: "
                 "'energy-efficiency is even harder to achieve than "
                 "time-efficiency').\n";
  }
  return 0;
}
