// Reproduces Table III: the experimental platforms' peak rates, plus
// the achieved rates §IV-B reports (via the simulator's achieved
// fractions), which calibrate the Fig. 4 "measured" points.

#include <iostream>

#include "bench_common.hpp"

using namespace rme;

int main() {
  bench::print_heading("Table III: platforms");
  {
    report::Table t({"Device", "Model", "Peak GFLOP/s single (double)",
                     "Peak GB/s", "TDP (chip only) W"});
    const auto add = [&](const presets::PlatformPeaks& p) {
      t.add_row({p.device, p.model,
                 report::fmt(p.gflops_single, 6) + " (" +
                     report::fmt(p.gflops_double, 6) + ")",
                 report::fmt(p.bandwidth_gbs, 4),
                 report::fmt(p.tdp_watts.value(), 3)});
    };
    add(presets::table3_cpu());
    add(presets::table3_gpu());
    t.print(std::cout);
  }

  bench::print_heading(
      "Achieved rates (simulated tuned kernels; paper's §IV-B numbers)");
  {
    report::Table t({"Platform", "Achieved GFLOP/s", "% of peak",
                     "Achieved GB/s", "% of peak", "Paper reports"});
    struct Row {
      bench::Platform p;
      Precision prec;
      const char* paper;
    };
    const Row rows[] = {
        {bench::gtx580_platform(Precision::kDouble), Precision::kDouble,
         "196 GFLOP/s (99.3%), 170 GB/s (88.3%)"},
        {bench::gtx580_platform(Precision::kSingle), Precision::kSingle,
         "1398 GFLOP/s, 168 GB/s"},
        {bench::i7_950_platform(Precision::kSingle), Precision::kSingle,
         "99.4 GFLOP/s (93.3%), 18.7 GB/s (73.1%)"},
        {bench::i7_950_platform(Precision::kDouble), Precision::kDouble,
         "49.7 GFLOP/s (93.3%), 18.9 GB/s (73.8%)"},
    };
    for (const Row& row : rows) {
      sim::SimConfig cfg;
      cfg.flop_fraction = row.p.flop_fraction;
      cfg.bw_fraction = row.p.bw_fraction;
      // Uncapped here: Table III reports capability, not the Fig. 4b
      // cap-throttled behaviour.
      const sim::Executor exec(row.p.machine, cfg);
      const auto compute =
          exec.run(sim::fma_load_mix(256.0, 1e9, row.prec));
      const auto memory = exec.run(sim::fma_load_mix(0.125, 1e9, row.prec));
      t.add_row({row.p.label,
                 report::fmt(compute.achieved_flops().value() / kGiga, 4),
                 report::fmt(100.0 * compute.achieved_flops() /
                                 row.p.machine.peak_flops(), 3),
                 report::fmt(memory.achieved_bandwidth().value() / kGiga, 4),
                 report::fmt(100.0 * memory.achieved_bandwidth() /
                                 row.p.machine.peak_bandwidth(), 3),
                 row.paper});
    }
    t.print(std::cout);
  }
  return 0;
}
