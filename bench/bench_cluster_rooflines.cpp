// Extension bench: the energy roofline with a network channel — the
// co-design thread the paper's §I builds on ([1], [3]).  A symmetric
// cluster of i7-950 nodes with a 10 GB/s interconnect: per-channel
// balance points, channel classification for §I's motivating workloads,
// and weak-scaling onsets of network-boundedness.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"

using namespace rme;

int main() {
  bench::print_heading(
      "Cluster energy roofline: 64 x i7-950 + 10 GB/s interconnect");

  ClusterParams cluster;
  cluster.name = "i7-950 cluster";
  cluster.node = presets::i7_950(Precision::kDouble);
  cluster.nodes = 64.0;
  cluster.time_per_net_byte = TimePerByte{1.0 / 10e9};
  cluster.energy_per_net_byte = EnergyPerByte{10e-9};  // NIC + switch share

  {
    report::Table t({"Channel", "time-balance [flop/B]",
                     "energy-balance [flop/B]"});
    t.add_row({"memory (DRAM)",
               report::fmt(cluster.node.time_balance(), 4),
               report::fmt(cluster.node.energy_balance(), 4)});
    t.add_row({"network", report::fmt(cluster.net_time_balance(), 4),
               report::fmt(cluster.net_energy_balance(), 4)});
    t.print(std::cout);
    std::cout << "\nThe interconnect's balance points dwarf DRAM's: a "
                 "flop:network-byte ratio of\n~5 is the new bar, in both "
                 "metrics -- communication avoidance matters more at\n"
                 "cluster scale (the [3] exascale-FFT argument).\n\n";
  }

  {
    std::cout << "Channel classification of per-node workloads:\n";
    report::Table t({"Workload", "W/node", "Q/node", "M/node",
                     "bound", "T [ms]", "E [J] (cluster)"});
    struct Row {
      const char* name;
      DistributedProfile w;
    };
    const double n_local = 1e7;
    const Row rows[] = {
        {"stencil + halo",
         {8.0 * n_local, 16.0 * n_local, halo_net_bytes(n_local)}},
        {"CG dot (allreduce)",
         {2.0 * n_local, 16.0 * n_local, allreduce_net_bytes(1.0)}},
        {"3-D FFT transpose",
         {5.0 * n_local * std::log2(64.0 * n_local), 16.0 * n_local,
          fft_transpose_net_bytes(64.0 * n_local, 64.0)}},
        {"matmul panel (I=64)",
         {64.0 * 8.0 * n_local, 8.0 * n_local,
          allreduce_net_bytes(std::sqrt(n_local))}},
    };
    for (const Row& row : rows) {
      const DistributedTime time = predict_time(cluster, row.w);
      const DistributedEnergy energy = predict_energy(cluster, row.w);
      t.add_row({row.name, report::fmt_si(row.w.flops, "flop"),
                 report::fmt_si(row.w.mem_bytes, "B"),
                 report::fmt_si(row.w.net_bytes, "B"),
                 to_string(time.bound),
                 report::fmt(time.total_seconds.value() * 1e3, 4),
                 report::fmt(energy.total_joules.value(), 4)});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\nEnergy share by channel (3-D FFT transpose case):\n";
    const double n_local = 1e7;
    DistributedProfile w{5.0 * n_local * std::log2(64.0 * n_local),
                         16.0 * n_local,
                         fft_transpose_net_bytes(64.0 * n_local, 64.0)};
    const DistributedEnergy e = predict_energy(cluster, w);
    report::Table t({"Component", "J", "%"});
    const auto row = [&](const char* name, double j) {
      t.add_row({name, report::fmt(j, 4),
                 report::fmt(100.0 * j / e.total_joules.value(), 3)});
    };
    row("flops", e.flops_joules.value());
    row("DRAM", e.mem_joules.value());
    row("network", e.net_joules.value());
    row("constant power", e.const_joules.value());
    t.print(std::cout);
  }
  return 0;
}
