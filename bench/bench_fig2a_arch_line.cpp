// Reproduces Fig. 2a: the time roofline (sharp inflection at B_tau) vs
// the energy "arch line" (smooth, half-efficiency at B_eps) for the
// Table II Fermi parameters with pi0 = 0, over I in [1/2, 512].

#include <iostream>

#include "bench_common.hpp"

using namespace rme;

int main() {
  bench::print_heading(
      "Fig. 2a: roofline (time) vs arch line (energy), Fermi Table II");

  const MachineParams m = presets::fermi_table2();
  const auto grid = log_intensity_grid(0.5, 512.0, 2);
  const Curve roof = time_roofline(m, grid);
  const Curve arch = energy_arch_line(m, grid);

  report::Table t({"Intensity (flop:B)", "Roofline (rel. 515 GFLOP/s)",
                   "Arch line (rel. 40 GFLOP/J)"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    t.add_row({report::fmt(grid[i], 4), report::fmt(roof[i].value, 4),
               report::fmt(arch[i].value, 4)});
  }
  t.print(std::cout);

  std::cout << "\nBalance points: B_tau = " << report::fmt(m.time_balance(), 3)
            << " flop/B (roofline inflection), B_eps = "
            << report::fmt(m.energy_balance(), 3)
            << " flop/B (arch line at 1/2).\n"
            << "Balance gap B_eps/B_tau = "
            << report::fmt(m.balance_gap(), 3) << "\n\n";

  report::ChartConfig cfg;
  cfg.height = 18;
  cfg.y_label = "relative performance (log2)";
  report::AsciiChart chart(cfg);
  chart.add_series({"roofline (GFLOP/s)", '#', time_roofline(m, log_intensity_grid(0.5, 512.0, 12))});
  chart.add_series({"arch line (GFLOP/J)", '*', energy_arch_line(m, log_intensity_grid(0.5, 512.0, 12))});
  chart.add_marker({"B_tau", m.time_balance(), '|'});
  chart.add_marker({"B_eps", m.energy_balance(), ':'});
  chart.print(std::cout);
  return 0;
}
