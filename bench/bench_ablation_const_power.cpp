// Ablation: constant power pi0 (§II-D, §V-B, Fig. 4a bottom-left).
// Sweeping pi0 from 0 to the fitted 122 W shows how the effective
// energy-balance point B-hat migrates below B_tau — the mechanism that
// makes race-to-halt work today and would break it if architects drove
// pi0 -> 0 on the GPU in double precision.

#include <iostream>

#include "bench_common.hpp"

using namespace rme;

int main() {
  bench::print_heading(
      "Ablation: pi0 sweep on the GTX 580 (double) -- balance inversion");

  report::Table t({"pi0 [W]", "eta_flop", "B_eps", "B-hat fixed point",
                   "B_tau", "time-eff => energy-eff?", "peak GFLOP/J"});
  for (double pi0 : {0.0, 10.0, 20.0, 40.0, 61.0, 80.0, 122.0, 200.0}) {
    MachineParams m = presets::gtx580(Precision::kDouble);
    m.const_power = Watts{pi0};
    const bool race_to_halt = m.time_balance() >= m.balance_fixed_point();
    t.add_row({report::fmt(pi0, 4), report::fmt(m.flop_efficiency(), 3),
               report::fmt(m.energy_balance(), 3),
               report::fmt(m.balance_fixed_point(), 3),
               report::fmt(m.time_balance(), 3),
               race_to_halt ? "yes (race-to-halt works)" : "NO (inverts)",
               report::fmt(m.peak_flops_per_joule().value() / kGiga, 3)});
  }
  t.print(std::cout);

  // Find the inversion threshold: the pi0 at which B-hat's fixed point
  // crosses B_tau.
  MachineParams probe = presets::gtx580(Precision::kDouble);
  double lo = 0.0, hi = 122.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    probe.const_power = Watts{mid};
    (probe.balance_fixed_point() > probe.time_balance() ? lo : hi) = mid;
  }
  std::cout << "\nInversion threshold: pi0 ~ " << report::fmt(hi, 4)
            << " W.  Below it, the GTX 580 double-precision effective "
               "energy balance\nexceeds B_tau (Fig. 4a's 'const=0' line at "
               "2.4 vs B_tau = 1.0): optimizing for\nenergy becomes the "
               "harder goal and race-to-halt stops being optimal.\n";

  // i7-950 contrast: even pi0 = 0 does not invert (SsV-B).
  MachineParams cpu = presets::i7_950(Precision::kDouble);
  cpu.const_power = Watts{0.0};
  std::cout << "\nContrast (i7-950 double, pi0 = 0): B_eps = "
            << report::fmt(cpu.energy_balance(), 3) << " < B_tau = "
            << report::fmt(cpu.time_balance(), 3)
            << " -- no inversion even with zero constant power, because "
               "eps_flop and eps_mem\nare closer on the CPU (SsV-B).\n";
  return 0;
}
