// Reproduces Fig. 4: measured (simulated apparatus) vs model time and
// energy performance across intensity, for both platforms and both
// precisions.  Per subplot the paper annotates the peak (GFLOP/s or
// GFLOP/J), the time-balance point, the const=0 energy balance, and the
// true effective balance point; all are printed here.
//
// The "measured" columns come from the full §IV-A pipeline: 100
// repetitions per point on the simulated machine (achieved-fraction
// derating + GTX 580 board power cap + 1% run noise), 128 Hz PowerMon
// sampling summed over the interposer rails.
//
// --jobs N runs each subplot's kernel sweep on an rme::exec pool; the
// printed table (and --csv output) is bit-identical for every N, which
// tests/golden/bench_fig4_intensity_sweep.csv pins.

#include <fstream>
#include <iostream>
#include <memory>

#include "bench_common.hpp"

using namespace rme;

namespace {

void run_subplot(const bench::Platform& platform, Precision prec,
                 unsigned jobs, report::CsvWriter* csv, obs::Tracer* tracer) {
  const MachineParams& m = platform.machine;
  bench::print_heading(std::string("Fig. 4 subplot: ") + platform.label);

  std::cout << "Peak = " << report::fmt(m.peak_flops().value() / kGiga, 4)
            << " GFLOP/s, " << report::fmt(m.peak_flops_per_joule().value() / kGiga, 3)
            << " GFLOP/J.  Balance points: B_tau="
            << report::fmt(m.time_balance(), 3) << ", B_eps(const=0)="
            << report::fmt(m.energy_balance(), 3) << ", effective (y=1/2)="
            << report::fmt(m.balance_fixed_point(), 3) << "\n\n";

  const obs::Span span(tracer,
                       tracer == nullptr ? std::string()
                                         : std::string("subplot ") +
                                               platform.label,
                       "bench");
  const auto session = bench::make_session(platform);
  const auto kernels = bench::fig4_sweep(prec);
  const auto results = session.measure_sweep(kernels, jobs, tracer);

  report::Table t({"I (flop:B)", "time: measured", "time: model",
                   "energy: measured", "energy: model", "capped"});
  for (const power::SessionResult& r : results) {
    const double i = r.kernel.intensity();
    // Normalized speed: achieved flops over platform peak.
    const double meas_speed =
        r.kernel.flops / r.seconds.median / m.peak_flops().value();
    const double meas_eff = r.kernel.flops / r.joules.median /
                            m.peak_flops_per_joule().value();
    t.add_row({report::fmt(i, 4), report::fmt(meas_speed, 3),
               report::fmt(normalized_speed(m, i), 3),
               report::fmt(meas_eff, 3),
               report::fmt(normalized_efficiency(m, i), 3),
               r.any_capped ? "yes" : ""});
    if (csv) {
      csv->write_row({platform.label, report::fmt(i, 4),
                      report::fmt(meas_speed, 3),
                      report::fmt(normalized_speed(m, i), 3),
                      report::fmt(meas_eff, 3),
                      report::fmt(normalized_efficiency(m, i), 3),
                      r.any_capped ? "yes" : "no"});
    }
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::BenchObs bobs(args);
  std::ofstream csv_file;
  std::unique_ptr<report::CsvWriter> csv;
  if (!args.csv_path.empty()) {
    csv_file.open(args.csv_path);
    csv = std::make_unique<report::CsvWriter>(csv_file);
    csv->write_row({"platform", "intensity", "time_measured", "time_model",
                    "energy_measured", "energy_model", "capped"});
  }

  run_subplot(bench::gtx580_platform(Precision::kDouble), Precision::kDouble,
              args.jobs, csv.get(), bobs.tracer());
  run_subplot(bench::i7_950_platform(Precision::kDouble), Precision::kDouble,
              args.jobs, csv.get(), bobs.tracer());
  run_subplot(bench::gtx580_platform(Precision::kSingle), Precision::kSingle,
              args.jobs, csv.get(), bobs.tracer());
  run_subplot(bench::i7_950_platform(Precision::kSingle), Precision::kSingle,
              args.jobs, csv.get(), bobs.tracer());

  std::cout
      << "\nPaper shape checks reproduced:\n"
         "  * measured points track the roofline and arch line (eqs. 3, 5);\n"
         "  * GTX 580 single precision departs from the roofline near "
         "B_tau = 8.2\n    (board power cap, 'capped' column) as in Fig. 4b;\n"
         "  * in all subplots B_tau exceeds the effective energy-balance "
         "point, so\n    time-efficiency implies energy-efficiency "
         "(race-to-halt works, SsV-B).\n";
  const bool csv_ok = bench::finish_csv(csv_file, args.csv_path);
  return bobs.finish() && csv_ok ? cli::kExitOk : cli::kExitDegraded;
}
