// Ablation: instrument faults vs. the eq. (9) fit — OLS against Huber.
//
// The paper's Table IV coefficients come from OLS over clean PowerMon
// measurements.  This ablation corrupts the measurement stream with a
// seeded FaultInjector (sample dropouts + transient current spikes, the
// two dominant PowerMon-class failure modes) at increasing rates, fits
// the corrupted per-rep (W, Q, T, E) tuples with both estimators, and
// reports each coefficient's deviation from the clean-run fit.  A third
// column re-runs OLS behind the session quality-control layer (retry +
// MAD outlier rejection) to show the two defenses compose.
//
// The committed reference output lives at bench/golden/
// bench_ablation_faults.txt; the headline criterion is that at the
// 5% dropout + 1% spike profile the Huber coefficients stay within 10%
// of the clean fit while raw OLS drifts further.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"

using namespace rme;

namespace {

constexpr std::uint64_t kFaultSeed = 0xFA117;
constexpr std::size_t kReps = 16;

sim::FaultProfile fault_profile(double scale) {
  sim::FaultProfile p;
  p.sample_dropout_rate = 0.05 * scale;
  p.spike_rate = 0.01 * scale;
  p.spike_gain_min = 6.0;
  p.spike_gain_max = 24.0;
  return p;
}

power::MeasurementSession faulty_session(const bench::Platform& platform,
                                         const sim::FaultProfile& profile,
                                         bool with_qc) {
  sim::SimConfig sim_cfg;
  sim_cfg.flop_fraction = platform.flop_fraction;
  sim_cfg.bw_fraction = platform.bw_fraction;
  sim_cfg.power_cap_watts = Watts{platform.power_cap};
  sim_cfg.noise = sim::NoiseModel(0xA11CE, 0.01);
  power::PowerMonConfig mon_cfg;
  mon_cfg.sample_hz = Hertz{128.0};
  power::SessionConfig ses_cfg;
  ses_cfg.repetitions = kReps;
  ses_cfg.qc.enabled = with_qc;
  return power::MeasurementSession(
      sim::Executor(platform.machine, sim_cfg),
      power::PowerMon(power::gtx580_rails(), mon_cfg,
                      sim::FaultInjector(profile, kFaultSeed)),
      ses_cfg);
}

// Short kernels, each spanning only a handful of PowerMon ticks: a
// transient spike then corrupts a minority of reps badly instead of
// every rep mildly — the regime where a bounded-influence estimator
// matters.  Words per kernel are sized from the machine's time model,
// cycling through three duration tiers so the T/W regressor decouples
// from Q/W in the memory-bound region (equal durations would make them
// collinear there and leave eps_mem / pi0 poorly separated).
std::vector<sim::KernelDesc> sweep(const MachineParams& m, Precision p) {
  constexpr double kTierSeconds[] = {0.018, 0.030, 0.050};  // 2-6 ticks
  const double hi = p == Precision::kSingle ? 64.0 : 16.0;
  std::vector<sim::KernelDesc> kernels;
  std::size_t tier = 0;
  for (const double intensity : sim::pow2_grid(0.25, hi)) {
    const double target = kTierSeconds[tier++ % 3];
    const auto sec_per_byte =
        max(m.time_per_byte, Intensity{intensity} * m.time_per_flop);
    const double words = target / sec_per_byte.value() / word_bytes(p);
    kernels.push_back(sim::fma_load_mix(intensity, words, p));
  }
  return kernels;
}

// Per-rep tuples: every surviving repetition contributes one sample, so
// instrument faults reach the regression instead of vanishing into the
// per-kernel median.
std::vector<fit::EnergySample> collect(const power::MeasurementSession& sp,
                                       const power::MeasurementSession& dp,
                                       power::SessionQuality* quality,
                                       unsigned jobs, obs::Tracer* tracer) {
  std::vector<fit::EnergySample> samples;
  for (const power::MeasurementSession* session : {&sp, &dp}) {
    const Precision prec =
        session == &sp ? Precision::kSingle : Precision::kDouble;
    for (const auto& r : session->measure_sweep(
             sweep(presets::i7_950(prec), prec), jobs, tracer)) {
      if (quality) {
        quality->reps_retried += r.quality.reps_retried;
        quality->reps_kept_degraded += r.quality.reps_kept_degraded;
        quality->reps_discarded += r.quality.reps_discarded;
        quality->reps_discarded_outlier += r.quality.reps_discarded_outlier;
        quality->dropped_samples += r.quality.dropped_samples;
        quality->saturated_samples += r.quality.saturated_samples;
      }
      for (const auto& rep : r.reps) {
        if (rep.outlier) continue;
        fit::EnergySample s;
        s.flops = r.kernel.flops;
        s.bytes = r.kernel.bytes;
        s.seconds = rep.seconds;
        s.joules = rep.joules;
        s.precision = prec;
        samples.push_back(s);
      }
    }
  }
  return samples;
}

struct CoeffSet {
  double eps_s, eps_d, eps_mem, pi0;
};

CoeffSet coeffs(const fit::EnergyFit& f) {
  return {f.coefficients.eps_single.value(), f.coefficients.eps_double().value(),
          f.coefficients.eps_mem.value(), f.coefficients.const_power.value()};
}

double pct(double fitted, double clean) {
  return clean != 0.0 ? 100.0 * (fitted - clean) / clean : 0.0;
}

double max_abs_dev(const CoeffSet& f, const CoeffSet& clean) {
  double m = std::fabs(pct(f.eps_s, clean.eps_s));
  m = std::max(m, std::fabs(pct(f.eps_d, clean.eps_d)));
  m = std::max(m, std::fabs(pct(f.eps_mem, clean.eps_mem)));
  return std::max(m, std::fabs(pct(f.pi0, clean.pi0)));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::BenchObs bobs(args);
  bench::print_heading(
      "Ablation: instrument faults vs. eq. (9) fit (OLS / Huber / OLS+QC)");

  const bench::Platform sp = bench::i7_950_platform(Precision::kSingle);
  const bench::Platform dp = bench::i7_950_platform(Precision::kDouble);

  // All fits use relative-error (variance-stabilized) rows: per-rep
  // tuples span ~10x in E/W across the intensity grid while the noise
  // is multiplicative, so absolute residuals would be heteroscedastic
  // for OLS and Huber alike.  With that held fixed, the table isolates
  // what the estimator itself does under corruption.
  fit::EnergyFitOptions ols_opts;
  ols_opts.relative_error = true;

  // Clean baseline: zero-fault profile, the paper's OLS.
  const auto clean_samples =
      collect(faulty_session(sp, fault_profile(0.0), false),
              faulty_session(dp, fault_profile(0.0), false), nullptr,
              args.jobs, bobs.tracer());
  const CoeffSet clean =
      coeffs(fit::fit_energy_coefficients(clean_samples, ols_opts));
  std::cout << "Clean-run OLS baseline (Intel i7-950, per-rep tuples):\n"
            << "  eps_s   = " << report::fmt(clean.eps_s / kPico, 4)
            << " pJ/FLOP\n"
            << "  eps_d   = " << report::fmt(clean.eps_d / kPico, 4)
            << " pJ/FLOP\n"
            << "  eps_mem = " << report::fmt(clean.eps_mem / kPico, 4)
            << " pJ/B\n"
            << "  pi0     = " << report::fmt(clean.pi0, 4) << " W\n\n";

  report::Table t({"dropout", "spike", "estimator", "eps_s dev%",
                   "eps_d dev%", "eps_mem dev%", "pi0 dev%", "max |dev|%"});
  fit::EnergyFitOptions huber;
  huber.method = fit::FitMethod::kHuber;
  huber.relative_error = true;

  for (const double scale : {0.5, 1.0, 2.0}) {
    const sim::FaultProfile profile = fault_profile(scale);
    const auto label_d = report::fmt(100.0 * profile.sample_dropout_rate, 3);
    const auto label_s = report::fmt(100.0 * profile.spike_rate, 3);

    const auto raw = collect(faulty_session(sp, profile, false),
                             faulty_session(dp, profile, false), nullptr,
                             args.jobs, bobs.tracer());
    const CoeffSet ols_c = coeffs(fit::fit_energy_coefficients(raw, ols_opts));
    const CoeffSet hub_c = coeffs(fit::fit_energy_coefficients(raw, huber));

    power::SessionQuality qc_quality;
    const auto qc = collect(faulty_session(sp, profile, true),
                            faulty_session(dp, profile, true), &qc_quality,
                            args.jobs, bobs.tracer());
    const CoeffSet qc_c = coeffs(fit::fit_energy_coefficients(qc, ols_opts));

    const auto row = [&](const char* estimator, const CoeffSet& c) {
      t.add_row({label_d + "%", label_s + "%", estimator,
                 report::fmt(pct(c.eps_s, clean.eps_s), 2),
                 report::fmt(pct(c.eps_d, clean.eps_d), 2),
                 report::fmt(pct(c.eps_mem, clean.eps_mem), 2),
                 report::fmt(pct(c.pi0, clean.pi0), 2),
                 report::fmt(max_abs_dev(c, clean), 2)});
    };
    row("OLS (raw)", ols_c);
    row("Huber (raw)", hub_c);
    row("OLS + session QC", qc_c);

    if (scale == 1.0) {
      std::cout << "Reference profile (5% dropout + 1% spikes), session QC: "
                << qc_quality.reps_retried << " reps retried, "
                << qc_quality.reps_discarded_outlier
                << " MAD-rejected, " << qc_quality.dropped_samples
                << " samples dropped, " << qc_quality.saturated_samples
                << " saturated.\n\n";
      const bool huber_ok = max_abs_dev(hub_c, clean) < 10.0;
      const bool ols_worse =
          max_abs_dev(ols_c, clean) > max_abs_dev(hub_c, clean);
      std::cout << "Headline criterion at 5%/1%: Huber within 10% of clean: "
                << (huber_ok ? "yes" : "NO")
                << "; OLS deviates more than Huber: "
                << (ols_worse ? "yes" : "NO") << "\n\n";
    }
  }
  t.print(std::cout);

  std::cout
      << "\nReading: sample dropouts alone are absorbed by the gap-aware\n"
         "trapezoidal integration; transient spikes corrupt a minority of\n"
         "reps, which drags OLS while Huber's bounded influence holds the\n"
         "Table IV coefficients near the clean fit.  Session QC (retry +\n"
         "MAD rejection) recovers OLS by discarding the corrupted reps\n"
         "before they reach the regression — until fault rates climb high\n"
         "enough that retries stop finding clean reps, where the robust\n"
         "estimator keeps degrading gracefully.\n";
  return bobs.finish() ? cli::kExitOk : cli::kExitDegraded;
}
