// Reproduces Fig. 2b: the "power line" — average power normalized to
// flop power vs intensity, Fermi Table II parameters, pi0 = 0.
// Dashed levels of the figure: y = 1 (flop power), y = B_eps/B_tau = 4.0
// (memory-bound limit), y = 1 + B_eps/B_tau = 5.0 (max, at I = B_tau).

#include <iostream>

#include "bench_common.hpp"

using namespace rme;

int main() {
  bench::print_heading("Fig. 2b: power line, Fermi Table II (pi0 = 0)");

  const MachineParams m = presets::fermi_table2();
  const auto grid = log_intensity_grid(0.5, 512.0, 2);
  const Curve line = power_line(m, grid);

  report::Table t({"Intensity (flop:B)", "P / pi_flop"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    t.add_row({report::fmt(grid[i], 4), report::fmt(line[i].value, 4)});
  }
  t.print(std::cout);

  const double gap = m.energy_balance() / m.time_balance();
  std::cout << "\nFigure levels: flop power y=1; memory-bound limit y="
            << report::fmt(gap, 3) << " (paper: 4.0); max power y="
            << report::fmt(1.0 + gap, 3) << " (paper: 5.0) at I=B_tau="
            << report::fmt(m.time_balance(), 3) << "\n\n";

  report::ChartConfig cfg;
  cfg.height = 14;
  cfg.y_label = "power relative to flop power (log2)";
  report::AsciiChart chart(cfg);
  chart.add_series({"P(I)/pi_flop", '*',
                    power_line(m, log_intensity_grid(0.5, 512.0, 12))});
  chart.add_marker({"B_tau", m.time_balance(), '|'});
  chart.add_marker({"B_eps", m.energy_balance(), ':'});
  chart.print(std::cout);
  return 0;
}
