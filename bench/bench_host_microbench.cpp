// Host intensity microbenchmarks under google-benchmark: the §IV-B
// kernels run for real on this machine's CPU (polynomial with degree-
// controlled intensity, FMA/load mix, STREAM), then a host "roofline"
// summary in the paper's format.  Energy is attached from RAPL when the
// sysfs interface exists, else from the model — the documented
// substitution for PowerMon 2.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace rme;

namespace {

constexpr std::size_t kElements = 1u << 20;

void BM_Polynomial(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  const std::vector<double> x = ubench::ramp_input(kElements);
  const std::vector<double> coeffs = ubench::default_coefficients(degree);
  std::vector<double> y(kElements);
  for (auto _ : state) {
    ubench::polynomial_eval(x, y, coeffs);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  const auto counts =
      ubench::polynomial_counts(degree, kElements, Precision::kDouble);
  state.counters["flop_per_byte"] = counts.intensity();
  state.counters["GFLOP/s"] = benchmark::Counter(
      counts.flops * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Polynomial)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_FmaMix(benchmark::State& state) {
  const int fmas = static_cast<int>(state.range(0));
  const std::vector<double> x = ubench::ramp_input(kElements);
  for (auto _ : state) {
    double sink = ubench::fma_mix_run(x, fmas);
    benchmark::DoNotOptimize(sink);
  }
  const auto counts =
      ubench::fma_mix_counts(fmas, kElements, Precision::kDouble);
  state.counters["flop_per_byte"] = counts.intensity();
  state.counters["GFLOP/s"] = benchmark::Counter(
      counts.flops * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FmaMix)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_StreamTriad(benchmark::State& state) {
  std::vector<double> a(kElements, 1.0), b(kElements, 2.0), c(kElements, 0.0);
  for (auto _ : state) {
    ubench::stream_triad(a, b, c, 3.0);
    benchmark::DoNotOptimize(c.data());
    benchmark::ClobberMemory();
  }
  state.counters["GB/s"] = benchmark::Counter(
      3.0 * 8.0 * kElements * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StreamTriad);

void host_roofline_summary() {
  bench::print_heading("Host roofline summary (real kernels, this machine)");
  ubench::HostSweepConfig cfg;
  cfg.elements = kElements;
  cfg.repetitions = 3;
  const auto poly = ubench::run_polynomial_sweep({1, 4, 16, 64}, cfg);
  const auto mix = ubench::run_fma_mix_sweep({1, 4, 16, 64}, cfg);

  report::Table t({"kernel", "I (flop:B)", "GFLOP/s", "GB/s",
                   "model E (i7-950 coeffs) [J]"});
  const MachineParams coeffs = presets::i7_950(Precision::kDouble);
  for (const auto& results : {poly, mix}) {
    for (const auto& r : results) {
      t.add_row({r.kernel, report::fmt(r.intensity(), 3),
                 report::fmt(r.gflops(), 3),
                 report::fmt(r.gbytes_per_second(), 3),
                 report::fmt(ubench::model_energy(coeffs, r).value(), 3)});
    }
  }
  t.print(std::cout);

  bench::print_heading("Host blocked matmul (SsII-A: intensity ~ b)");
  report::Table mm({"block", "I (flop:B)", "GFLOP/s"});
  for (const auto& p : ubench::run_matmul_sweep(192, {2, 8, 32, 96}, 2)) {
    mm.add_row({std::to_string(p.block),
                report::fmt(p.counts.intensity(), 3),
                report::fmt(p.gflops(), 3)});
  }
  mm.print(std::cout);

  const power::SysfsRapl rapl;
  std::printf("\nRAPL (sysfs powercap): %s\n",
              rapl.available()
                  ? "available -- energy columns can be measured directly"
                  : "not available in this environment -- energy attached "
                    "from Table IV model coefficients (documented "
                    "substitution)");

  bench::print_heading("Host SpMV (CSR, banded)");
  {
    const auto a = ubench::banded_matrix(1u << 17, 8, 11);
    const double seconds = ubench::time_spmv(a, 3);
    const KernelProfile p = ubench::spmv_profile(a);
    report::Table sp({"n", "nnz", "I (flop:B)", "GFLOP/s", "GB/s"});
    sp.add_row({std::to_string(a.rows), std::to_string(a.nnz()),
                report::fmt(p.intensity(), 3),
                report::fmt(p.flops / seconds / 1e9, 3),
                report::fmt(p.bytes / seconds / 1e9, 3)});
    sp.print(std::cout);
    std::cout << "\n";
  }

  bench::print_heading("Host STREAM");
  report::Table s({"kernel", "GB/s"});
  for (const auto& r : ubench::run_stream(kElements, 3)) {
    s.add_row({to_string(r.kernel), report::fmt(r.gbytes_per_second(), 3)});
  }
  s.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  host_roofline_summary();
  return 0;
}
