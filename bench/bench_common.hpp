#pragma once
// Shared apparatus for the benchmark harness: the simulated §IV-A
// experimental setup (platform presets + achieved-fraction derating +
// PowerMon sessions) used by the Fig. 4 / Table IV / Fig. 5 benches.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "rme/rme.hpp"

namespace rme::bench {

/// Shared bench harness flags.
///
///   --jobs N     parallelize the bench's sweep over an rme::exec pool
///                (0 = hardware concurrency; default 1 = serial).  All
///                sweeps are deterministic: any N prints the same bytes.
///                N must be a plain non-negative integer; anything else
///                (e.g. `--jobs abc`) exits 2 naming the flag.
///   --csv PATH   additionally emit the sweep's numbers as CSV (goldens
///                under tests/golden/ pin this output).
///   --trace PATH write a Chrome trace-event JSON of the run to PATH
///                (load in chrome://tracing or ui.perfetto.dev).  The
///                trace observes but never perturbs: CSV and stdout are
///                byte-identical with or without it.
///   --metrics    print an rme::obs metrics summary (counters, span
///                stats, latency histograms) to stderr after the run.
///
/// Benches follow the project exit-code contract (rme/cli/exit_codes.hpp,
/// docs/API.md "Process exit codes"): kExitOk on success, kExitDegraded
/// when an output file could not be written, kExitUsage on bad flags.
struct BenchArgs {
  unsigned jobs = 1;
  std::string csv_path;    ///< Empty: no CSV emission.
  std::string trace_path;  ///< Empty: no Chrome-trace export.
  bool metrics = false;    ///< Print a metrics summary to stderr.
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  const auto fail = [&](const std::string& message) {
    if (!message.empty()) std::fprintf(stderr, "%s\n", message.c_str());
    std::fprintf(
        stderr,
        "usage: %s [--jobs N] [--csv PATH] [--trace PATH] [--metrics]\n",
        argv[0]);
    std::exit(cli::kExitUsage);
  };
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      try {
        args.jobs = cli::parse_unsigned32(argv[++i], "--jobs");
      } catch (const cli::UsageError& e) {
        fail(e.what());
      }
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      args.csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      args.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      args.metrics = true;
    } else {
      fail("");
    }
  }
  return args;
}

/// Flushes a bench's CSV stream and reports whether every byte landed
/// (std::ofstream swallows write failures silently — disk full, dead
/// mount — and goldens pinned to a partial CSV would mislead).  True
/// when no CSV was requested; on failure, names the file on stderr.
inline bool finish_csv(std::ofstream& csv_file, const std::string& path) {
  if (path.empty()) return true;
  csv_file.flush();
  if (csv_file.good()) return true;
  std::fprintf(stderr, "error: cannot write CSV file '%s'\n", path.c_str());
  return false;
}

/// The bench harness's observability rig: owns the RealClock + Tracer
/// when `--trace` or `--metrics` asked for one, and hands out a Tracer*
/// that is null otherwise — so instrumented library calls are no-ops on
/// an untraced run.  This is the designated tool/bench-layer home of
/// obs::make_real_clock() (see rme/obs/clock.hpp).
class BenchObs {
 public:
  explicit BenchObs(const BenchArgs& args)
      : trace_path_(args.trace_path), metrics_(args.metrics) {
    if (!trace_path_.empty() || metrics_) {
      clock_ = obs::make_real_clock();
      tracer_ = std::make_unique<obs::Tracer>(*clock_);
    }
  }

  /// The sink to pass into library calls; null when tracing is off.
  [[nodiscard]] obs::Tracer* tracer() noexcept { return tracer_.get(); }

  /// Writes the trace file and/or the stderr metrics summary (stderr so
  /// CSV/stdout stay byte-identical).  Returns false when the trace
  /// file could not be written.
  bool finish() {
    if (tracer_ == nullptr) return true;
    bool ok = true;
    if (!trace_path_.empty()) {
      ok = obs::write_chrome_trace_file(trace_path_, *tracer_);
      if (!ok) {
        std::fprintf(stderr, "error: cannot write trace file '%s'\n",
                     trace_path_.c_str());
      }
    }
    if (metrics_) obs::write_metrics_summary(std::cerr, tracer_->snapshot());
    return ok;
  }

 private:
  std::string trace_path_;
  bool metrics_;
  std::unique_ptr<obs::Clock> clock_;
  std::unique_ptr<obs::Tracer> tracer_;
};

/// A platform under test: machine ground truth plus the achieved
/// fractions §IV-B reports for tuned kernels on it.
struct Platform {
  MachineParams machine;
  double flop_fraction;
  double bw_fraction;
  Watts power_cap;   ///< Board cap; huge when effectively uncapped.
  const char* label;
};

inline Platform gtx580_platform(Precision p) {
  // §IV-B achieved fractions: double precision sustains 196/197.63 =
  // 99.3% of peak flops and 170/192.4 = 88.3% of bandwidth; single
  // precision reaches 1398/1581.06 = 88.4% and 168/192.4 = 87.3%.
  const bool single = p == Precision::kSingle;
  return Platform{presets::gtx580(p), single ? 0.884 : 0.993,
                  single ? 0.873 : 0.883, Watts{presets::kGtx580PowerCapWatts},
                  single ? "NVIDIA GTX 580 (single)"
                         : "NVIDIA GTX 580 (double)"};
}

inline Platform i7_950_platform(Precision p) {
  // §IV-B: CPU sustains 93.3% of peak flops / ~73-74% of peak bandwidth.
  return Platform{presets::i7_950(p), 0.933, p == Precision::kSingle ? 0.731
                                                                     : 0.738,
                  Watts{1e18}, p == Precision::kSingle ? "Intel i7-950 (single)"
                                                : "Intel i7-950 (double)"};
}

/// The §IV-A measurement stack for a platform: 128 Hz PowerMon over the
/// interposer rails, N repetitions, seeded noise.
inline power::MeasurementSession make_session(const Platform& p,
                                              std::size_t reps = 100,
                                              double noise = 0.01,
                                              std::uint64_t seed = 0xA11CE) {
  sim::SimConfig sim_cfg;
  sim_cfg.flop_fraction = p.flop_fraction;
  sim_cfg.bw_fraction = p.bw_fraction;
  sim_cfg.power_cap_watts = p.power_cap;
  sim_cfg.noise = sim::NoiseModel(seed, noise);
  power::PowerMonConfig mon_cfg;
  mon_cfg.sample_hz = Hertz{128.0};  // the paper's 7.8125 ms interval
  return power::MeasurementSession(
      sim::Executor(p.machine, sim_cfg),
      power::PowerMon(power::gtx580_rails(), mon_cfg),
      power::SessionConfig{reps});
}

/// Fig. 4's intensity grids: ¼..16 flop:byte double, ¼..64 single —
/// with long-running kernels so 128 Hz sampling resolves power.
inline std::vector<sim::KernelDesc> fig4_sweep(Precision p) {
  const double hi = p == Precision::kSingle ? 64.0 : 16.0;
  return sim::intensity_sweep(sim::pow2_grid(0.25, hi), 8e9, p);
}

inline void print_heading(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace rme::bench
