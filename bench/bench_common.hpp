#pragma once
// Shared apparatus for the benchmark harness: the simulated §IV-A
// experimental setup (platform presets + achieved-fraction derating +
// PowerMon sessions) used by the Fig. 4 / Table IV / Fig. 5 benches.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "rme/rme.hpp"

namespace rme::bench {

/// Shared bench harness flags.
///
///   --jobs N   parallelize the bench's sweep over an rme::exec pool
///              (0 = hardware concurrency; default 1 = serial).  All
///              sweeps are deterministic: any N prints the same bytes.
///   --csv PATH additionally emit the sweep's numbers as CSV (goldens
///              under tests/golden/ pin this output).
struct BenchArgs {
  unsigned jobs = 1;
  std::string csv_path;  ///< Empty: no CSV emission.
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      args.jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      args.csv_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--jobs N] [--csv PATH]\n", argv[0]);
      std::exit(2);
    }
  }
  return args;
}

/// A platform under test: machine ground truth plus the achieved
/// fractions §IV-B reports for tuned kernels on it.
struct Platform {
  MachineParams machine;
  double flop_fraction;
  double bw_fraction;
  Watts power_cap;   ///< Board cap; huge when effectively uncapped.
  const char* label;
};

inline Platform gtx580_platform(Precision p) {
  // §IV-B achieved fractions: double precision sustains 196/197.63 =
  // 99.3% of peak flops and 170/192.4 = 88.3% of bandwidth; single
  // precision reaches 1398/1581.06 = 88.4% and 168/192.4 = 87.3%.
  const bool single = p == Precision::kSingle;
  return Platform{presets::gtx580(p), single ? 0.884 : 0.993,
                  single ? 0.873 : 0.883, Watts{presets::kGtx580PowerCapWatts},
                  single ? "NVIDIA GTX 580 (single)"
                         : "NVIDIA GTX 580 (double)"};
}

inline Platform i7_950_platform(Precision p) {
  // §IV-B: CPU sustains 93.3% of peak flops / ~73-74% of peak bandwidth.
  return Platform{presets::i7_950(p), 0.933, p == Precision::kSingle ? 0.731
                                                                     : 0.738,
                  Watts{1e18}, p == Precision::kSingle ? "Intel i7-950 (single)"
                                                : "Intel i7-950 (double)"};
}

/// The §IV-A measurement stack for a platform: 128 Hz PowerMon over the
/// interposer rails, N repetitions, seeded noise.
inline power::MeasurementSession make_session(const Platform& p,
                                              std::size_t reps = 100,
                                              double noise = 0.01,
                                              std::uint64_t seed = 0xA11CE) {
  sim::SimConfig sim_cfg;
  sim_cfg.flop_fraction = p.flop_fraction;
  sim_cfg.bw_fraction = p.bw_fraction;
  sim_cfg.power_cap_watts = p.power_cap;
  sim_cfg.noise = sim::NoiseModel(seed, noise);
  power::PowerMonConfig mon_cfg;
  mon_cfg.sample_hz = Hertz{128.0};  // the paper's 7.8125 ms interval
  return power::MeasurementSession(
      sim::Executor(p.machine, sim_cfg),
      power::PowerMon(power::gtx580_rails(), mon_cfg),
      power::SessionConfig{reps});
}

/// Fig. 4's intensity grids: ¼..16 flop:byte double, ¼..64 single —
/// with long-running kernels so 128 Hz sampling resolves power.
inline std::vector<sim::KernelDesc> fig4_sweep(Precision p) {
  const double hi = p == Precision::kSingle ? 64.0 : 16.0;
  return sim::intensity_sweep(sim::pow2_grid(0.25, hi), 8e9, p);
}

inline void print_heading(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace rme::bench
