// Ablation: the power-cap extension (§V-B; listed as future work in
// §VII, implemented here).  Sweeps cap values on the GTX 580 single-
// precision configuration and shows where the cap starts to bite, how
// much time it costs, and what it does to energy.

#include <iostream>

#include "bench_common.hpp"

using namespace rme;

int main() {
  bench::print_heading(
      "Ablation: power caps on the GTX 580 (single precision)");

  const MachineParams m = presets::gtx580(Precision::kSingle);
  std::cout << "Model max power " << report::fmt(max_power(m).value(), 4)
            << " W at I = B_tau = " << report::fmt(m.time_balance(), 3)
            << "; compute-bound limit "
            << report::fmt(compute_bound_power_limit(m).value(), 4)
            << " W; board rating " << presets::kGtx580PowerCapWatts
            << " W.\n\n";

  {
    report::Table t({"cap [W]", "violation onset I", "slowdown @ B_tau",
                     "energy overhead @ B_tau", "slowdown @ I=64"});
    for (double cap : {150.0, 200.0, 244.0, 300.0, 350.0, 400.0}) {
      const KernelProfile at_b =
          KernelProfile::from_intensity(m.time_balance(), 1e9);
      const KernelProfile at_64 = KernelProfile::from_intensity(64.0, 1e9);
      const CappedRun rb = run_with_cap(m, at_b, Watts{cap});
      const CappedRun r64 = run_with_cap(m, at_64, Watts{cap});
      const double t0 = predict_time(m, at_b).total_seconds.value();
      const double e0 = predict_energy(m, at_b).total_joules.value();
      const double onset = cap_violation_onset(m, Watts{cap});
      t.add_row({report::fmt(cap, 4),
                 onset < 0.0 ? "never" : report::fmt(onset, 3),
                 rb.feasible ? report::fmt(rb.seconds.value() / t0, 4) : "inf",
                 rb.feasible ? report::fmt(rb.joules.value() / e0, 4) : "inf",
                 r64.feasible
                     ? report::fmt(r64.seconds.value() /
                                       predict_time(m, at_64).total_seconds.value(),
                                   4)
                     : "inf"});
    }
    t.print(std::cout);
  }

  std::cout << "\nCapped roofline at the 244 W rating (the Fig. 4b "
               "departure):\n";
  {
    report::Table t({"I (flop:B)", "roofline", "capped roofline",
                     "throttle scale"});
    for (double i = 0.25; i <= 64.0; i *= 2.0) {
      const double uncapped = normalized_speed(m, i);
      const double capped =
          capped_normalized_speed(m, i, Watts{presets::kGtx580PowerCapWatts});
      t.add_row({report::fmt(i, 4), report::fmt(uncapped, 3),
                 report::fmt(capped, 3),
                 report::fmt(capped / uncapped, 3)});
    }
    t.print(std::cout);
  }
  return 0;
}
