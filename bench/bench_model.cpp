// Model-evaluation throughput bench (ROADMAP item 5): times the five
// hot kernels of the library — single model evaluation (the eq. (1)-(6)
// breakdown readout), the measurement sweep step, one Huber IRLS
// iteration, one bootstrap resample, and one power-trace integration —
// and emits a machine-readable BENCH_model.json so perf PRs have a
// committed before/after record (snapshot: bench/golden/BENCH_model.json,
// schema: docs/schema/bench_model.schema.json).
//
// The model-evaluation arm is the PR's acceptance gate: the scalar path
// (predict_time / predict_energy / normalized_* / *_bound per kernel,
// re-deriving the machine's balance points every call) against the
// batch SoA path (rme/core/batch.hpp: MachineEval caches the derived
// parameters once, evaluate_batch_into writes into a preallocated
// arena).  Both paths reduce to one checksum per pass in the same
// per-item order, so the bench also proves bit-identity: a checksum
// mismatch exits non-zero.  `batch_speedup_jobs1` must stay >= 5.
//
// All arms are best-of-`--repeats` wall time; everything is seeded and
// deterministic.
//
//   --jobs N       parallel arms' worker count (0 = hardware, default)
//   --repeats R    timed repetitions per arm, minimum kept (default 3)
//   --json PATH    output path (default BENCH_model.json in cwd)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

using rme::Bound;
using rme::KernelProfile;
using rme::MachineParams;
using rme::ModelBatch;
using rme::Precision;
using rme::Seconds;

/// Best-of-`repeats` wall time of `fn`, in milliseconds.
template <typename Fn>
double best_ms(int repeats, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

double ns_per_op(double ms, double ops) {
  return ops > 0.0 ? ms * 1e6 / ops : 0.0;
}

double ops_per_s(double ms, double ops) {
  return ms > 0.0 ? ops / (ms / 1000.0) : 0.0;
}

/// Two-decimal fixed formatting keeps the committed JSON readable.
std::string fixed2(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

/// The model-evaluation workload: a deterministic grid of profiles
/// spanning the intensity range of Fig. 4 with varied work magnitudes.
std::vector<KernelProfile> make_profiles(std::size_t count) {
  std::vector<KernelProfile> profiles;
  profiles.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double intensity =
        0.25 * std::pow(2.0, 8.0 * double(i) / double(count));
    const double flops = 1e9 * double(1 + i % 7);
    profiles.push_back(KernelProfile{flops, flops / intensity});
  }
  return profiles;
}

/// One model evaluation's scalar readout — everything a serve predict
/// row carries (breakdowns, normalized curves, both classifications and
/// their disagreement) — reduced to a double in a fixed order (the
/// batch arm reduces its columns in the same order, so equal checksums
/// mean identical results).
double scalar_row(const MachineParams& m, const KernelProfile& k) {
  const rme::TimeBreakdown t = rme::predict_time(m, k);
  const rme::EnergyBreakdown e = rme::predict_energy(m, k);
  const double intensity = k.flops / k.bytes;
  const double speed = rme::normalized_speed(m, intensity);
  const double efficiency = rme::normalized_efficiency(m, intensity);
  const double bounds =
      (rme::time_bound(m, intensity) == Bound::kCompute ? 1.0 : 0.0) +
      (rme::energy_bound(m, intensity) == Bound::kCompute ? 2.0 : 0.0) +
      (rme::classifications_disagree(m, intensity) ? 4.0 : 0.0);
  return t.total_seconds.value() + e.total_joules.value() + speed +
         efficiency + bounds;
}

/// The batch row reduction, mirroring scalar_row's summation order.
double batch_row(const ModelBatch& batch, std::size_t i) {
  const double bounds =
      (batch.time_class[i] == Bound::kCompute ? 1.0 : 0.0) +
      (batch.energy_class[i] == Bound::kCompute ? 2.0 : 0.0) +
      (batch.disagree(i) ? 4.0 : 0.0);
  return batch.total_seconds[i] + batch.total_joules[i] +
         batch.speed[i] + batch.efficiency[i] + bounds;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = 0;
  int repeats = 3;
  std::string json_path = "BENCH_model.json";
  for (int i = 1; i < argc; ++i) {
    const auto fail = [&](const char* message) {
      std::fprintf(stderr,
                   "%s\nusage: %s [--jobs N] [--repeats R] [--json PATH]\n",
                   message, argv[0]);
      return rme::cli::kExitUsage;
    };
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      try {
        jobs = rme::cli::parse_unsigned32(argv[++i], "--jobs");
      } catch (const rme::cli::UsageError& e) {
        return fail(e.what());
      }
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      try {
        repeats = std::max(
            1, int(rme::cli::parse_unsigned32(argv[++i], "--repeats")));
      } catch (const rme::cli::UsageError& e) {
        return fail(e.what());
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      return fail("unknown flag");
    }
  }
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());

  // ---- 1. model evaluation: scalar vs batch (the acceptance gate) ----
  const MachineParams machine = rme::presets::i7_950(Precision::kDouble);
  const std::vector<KernelProfile> profiles = make_profiles(4096);
  constexpr int kEvalPasses = 32;
  const double eval_ops = double(profiles.size()) * kEvalPasses;

  // Every pass recomputes the same per-pass checksum (kept, not
  // accumulated): the adds keep the scalar calls' results live at
  // negligible cost, and the kept value is compared against the batch
  // arena's reduction below — equal sums mean identical results.
  double scalar_sum = 0.0;
  const double scalar_ms = best_ms(repeats, [&] {
    for (int pass = 0; pass < kEvalPasses; ++pass) {
      double pass_sum = 0.0;
      for (const KernelProfile& k : profiles) {
        pass_sum += scalar_row(machine, k);
      }
      scalar_sum = pass_sum;
    }
  });

  // The batch arm times evaluation alone — the arena's columns are the
  // externally visible result, so no in-loop readout is needed to
  // defeat dead-code elimination.  The checksum reduction runs once on
  // the final arena, outside the timed region.
  const rme::MachineEval eval = rme::MachineEval::from(machine);
  ModelBatch arena;
  const double batch_ms_jobs1 = best_ms(repeats, [&] {
    for (int pass = 0; pass < kEvalPasses; ++pass) {
      rme::evaluate_batch_into(eval, profiles, arena);
    }
  });
  double batch_sum = 0.0;
  for (std::size_t i = 0; i < arena.size(); ++i) {
    batch_sum += batch_row(arena, i);
  }

  // Parallel arm: fixed-size chunks into per-chunk arenas (one slot per
  // chunk, reused across passes — exec::parallel_map's slot contract
  // keeps the result identical at any jobs value).
  constexpr std::size_t kChunk = 256;
  const std::size_t chunks = (profiles.size() + kChunk - 1) / kChunk;
  std::vector<ModelBatch> chunk_arenas(chunks);
  const double batch_ms_jobsn = best_ms(repeats, [&] {
    for (int pass = 0; pass < kEvalPasses; ++pass) {
      (void)rme::exec::parallel_map(
          chunks,
          [&](std::size_t c) {
            const std::size_t lo = c * kChunk;
            const std::size_t len = std::min(kChunk, profiles.size() - lo);
            rme::evaluate_batch_into(
                eval, std::span<const KernelProfile>(&profiles[lo], len),
                chunk_arenas[c]);
            return 0;
          },
          jobs);
    }
  });
  double batch_sum_jobsn = 0.0;
  for (const ModelBatch& chunk : chunk_arenas) {
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      batch_sum_jobsn += batch_row(chunk, i);
    }
  }

  if (scalar_sum != batch_sum || scalar_sum != batch_sum_jobsn) {
    std::fprintf(stderr,
                 "bench_model: scalar/batch checksum mismatch "
                 "(%.17g vs %.17g vs %.17g) — batch path is not "
                 "bit-identical\n",
                 scalar_sum, batch_sum, batch_sum_jobsn);
    return rme::cli::kExitDegraded;
  }
  const double batch_speedup =
      batch_ms_jobs1 > 0.0 ? scalar_ms / batch_ms_jobs1 : 0.0;

  // ---- 2. sweep step: one kernel through the §IV-A session ----------
  const rme::bench::Platform platform =
      rme::bench::i7_950_platform(Precision::kDouble);
  const rme::power::MeasurementSession session =
      rme::bench::make_session(platform, /*reps=*/10);
  const std::vector<rme::sim::KernelDesc> sweep =
      rme::bench::fig4_sweep(Precision::kDouble);
  const double sweep_ops = double(sweep.size());

  double sweep_sum = 0.0;
  const double sweep_ms_jobs1 = best_ms(repeats, [&] {
    sweep_sum = 0.0;
    for (const auto& r : session.measure_sweep(sweep, 1)) {
      sweep_sum += r.joules.median;
    }
  });
  const double sweep_ms_jobsn = best_ms(repeats, [&] {
    for (const auto& r : session.measure_sweep(sweep, jobs)) {
      sweep_sum += r.joules.median;
    }
  });

  // ---- 3. one Huber IRLS iteration ----------------------------------
  // A 1024x4 design with 5% gross outliers: enough rows that the
  // iteration cost (residuals, MAD rescale, weighted QR) dominates.
  constexpr std::size_t kRows = 1024;
  constexpr std::size_t kCols = 4;
  const rme::sim::NoiseModel irls_noise(0xF17, 0.05);
  rme::fit::Matrix design(kRows, kCols);
  std::vector<double> response(kRows, 0.0);
  std::uint64_t salt = 0;
  for (std::size_t r = 0; r < kRows; ++r) {
    design(r, 0) = 1.0;
    for (std::size_t c = 1; c < kCols; ++c) {
      design(r, c) = irls_noise.uniform(++salt) * 10.0;
    }
    response[r] = 2.0 + 0.5 * design(r, 1) - 1.5 * design(r, 2) +
                  3.0 * design(r, 3);
    response[r] = irls_noise.perturb(response[r], ++salt);
    if (r % 20 == 0) response[r] += 50.0;  // the outliers IRLS must shed
  }
  rme::fit::RobustRegression robust;
  const double irls_ms = best_ms(repeats, [&] {
    robust = rme::fit::huber_fit(design, response);
  });
  const double irls_iters = double(std::max<std::size_t>(1, robust.iterations));

  // ---- 4. one bootstrap resample ------------------------------------
  // The test_bootstrap workload: two precisions x the Fig. 4 grid x 6
  // noisy repetitions on the GTX 580 ground truth.
  std::vector<rme::fit::EnergySample> samples;
  const rme::sim::NoiseModel fit_noise(99, 0.02);
  salt = 0;
  for (Precision prec : {Precision::kSingle, Precision::kDouble}) {
    const MachineParams m = rme::presets::gtx580(prec);
    for (double i = 0.25; i <= 64.0; i *= 2.0) {
      for (int rep = 0; rep < 6; ++rep) {
        const KernelProfile k = KernelProfile::from_intensity(i, 1e9);
        rme::fit::EnergySample s;
        s.flops = k.flops;
        s.bytes = k.bytes;
        s.seconds = Seconds{
            fit_noise.perturb(rme::predict_time(m, k).total_seconds.value(),
                              ++salt)};
        s.joules = rme::Joules{
            fit_noise.perturb(rme::predict_energy(m, k).total_joules.value(),
                              ++salt)};
        s.precision = prec;
        samples.push_back(s);
      }
    }
  }
  constexpr std::size_t kResamples = 200;
  rme::fit::BootstrapEstimate boot;
  const double boot_ms_jobs1 = best_ms(repeats, [&] {
    boot = rme::fit::bootstrap_energy_fit(
        samples, rme::fit::energy_balance_statistic, kResamples, 7, 0.95, 1);
  });
  const double boot_ms_jobsn = best_ms(repeats, [&] {
    boot = rme::fit::bootstrap_energy_fit(
        samples, rme::fit::energy_balance_statistic, kResamples, 7, 0.95,
        jobs);
  });

  // ---- 5. power-trace integration -----------------------------------
  // Integrate the instrument over real executor traces: one Measurement
  // per (trace, rep) pair is the op being priced.
  const rme::power::PowerMon powermon(
      rme::power::gtx580_rails(),
      rme::power::PowerMonConfig{rme::Hertz{128.0}});
  std::vector<rme::sim::PowerTrace> traces;
  {
    rme::sim::SimConfig sim_cfg;
    sim_cfg.flop_fraction = platform.flop_fraction;
    sim_cfg.bw_fraction = platform.bw_fraction;
    sim_cfg.power_cap_watts = platform.power_cap;
    sim_cfg.noise = rme::sim::NoiseModel(0xA11CE, 0.01);
    const rme::sim::Executor executor(platform.machine, sim_cfg);
    traces.reserve(sweep.size());
    for (const auto& kernel : sweep) {
      traces.push_back(executor.run(kernel).trace);
    }
  }
  constexpr int kIntegrationReps = 200;
  const double integ_ops = double(traces.size()) * kIntegrationReps;
  double integ_sum = 0.0;
  const double integ_ms_jobs1 = best_ms(repeats, [&] {
    integ_sum = 0.0;
    for (const auto& trace : traces) {
      for (int r = 0; r < kIntegrationReps; ++r) {
        integ_sum += powermon.measure(trace).energy_joules.value();
      }
    }
  });
  const double integ_ms_jobsn = best_ms(repeats, [&] {
    const std::vector<double> partials = rme::exec::parallel_map(
        traces.size(),
        [&](std::size_t t) {
          double s = 0.0;
          for (int r = 0; r < kIntegrationReps; ++r) {
            s += powermon.measure(traces[t]).energy_joules.value();
          }
          return s;
        },
        jobs);
    integ_sum = 0.0;
    for (double p : partials) integ_sum += p;
  });

  // ---- report -------------------------------------------------------
  std::printf("%-44s %10.1f ns/op  %12.0f ops/s\n", "model eval (scalar)",
              ns_per_op(scalar_ms, eval_ops), ops_per_s(scalar_ms, eval_ops));
  std::printf("%-44s %10.1f ns/op  %12.0f ops/s\n", "model eval (batch, jobs=1)",
              ns_per_op(batch_ms_jobs1, eval_ops),
              ops_per_s(batch_ms_jobs1, eval_ops));
  std::printf("%-44s %10.1f ns/op  %12.0f ops/s\n",
              ("model eval (batch, jobs=" + std::to_string(jobs) + ")").c_str(),
              ns_per_op(batch_ms_jobsn, eval_ops),
              ops_per_s(batch_ms_jobsn, eval_ops));
  std::printf("batch speedup over scalar at jobs=1: %.2fx\n", batch_speedup);
  std::printf("%-44s %10.1f us/op\n", "sweep step (jobs=1)",
              ns_per_op(sweep_ms_jobs1, sweep_ops) / 1e3);
  std::printf("%-44s %10.1f us/op\n", "sweep step (jobs=N)",
              ns_per_op(sweep_ms_jobsn, sweep_ops) / 1e3);
  std::printf("%-44s %10.1f us/iter (%zu iters)\n", "huber IRLS",
              ns_per_op(irls_ms, irls_iters) / 1e3, robust.iterations);
  std::printf("%-44s %10.1f us/resample (%zu ok)\n", "bootstrap (jobs=1)",
              ns_per_op(boot_ms_jobs1, double(kResamples)) / 1e3,
              boot.resamples);
  std::printf("%-44s %10.1f us/resample\n", "bootstrap (jobs=N)",
              ns_per_op(boot_ms_jobsn, double(kResamples)) / 1e3);
  std::printf("%-44s %10.1f us/op\n", "power-trace integration (jobs=1)",
              ns_per_op(integ_ms_jobs1, integ_ops) / 1e3);
  std::printf("%-44s %10.1f us/op\n", "power-trace integration (jobs=N)",
              ns_per_op(integ_ms_jobsn, integ_ops) / 1e3);
  std::printf("checksums: eval %.6g  sweep %.6g  integration %.6g\n",
              batch_sum, sweep_sum, integ_sum);

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "bench_model: cannot write %s\n", json_path.c_str());
    return rme::cli::kExitDegraded;
  }
  out << "{\n"
      << "  \"bench\": \"rme model hot kernels (batch eval, sweep, IRLS, "
         "bootstrap, power integration)\",\n"
      << "  \"repeats\": " << repeats << ",\n"
      << "  \"jobs_parallel_arm\": " << jobs << ",\n"
      << "  \"model_eval_profiles\": " << profiles.size() << ",\n"
      << "  \"model_eval_scalar_ns_per_op_jobs1\": "
      << fixed2(ns_per_op(scalar_ms, eval_ops)) << ",\n"
      << "  \"model_eval_batch_ns_per_op_jobs1\": "
      << fixed2(ns_per_op(batch_ms_jobs1, eval_ops)) << ",\n"
      << "  \"model_eval_batch_ns_per_op_jobsN\": "
      << fixed2(ns_per_op(batch_ms_jobsn, eval_ops)) << ",\n"
      << "  \"model_eval_scalar_ops_per_s_jobs1\": "
      << fixed2(ops_per_s(scalar_ms, eval_ops)) << ",\n"
      << "  \"model_eval_batch_ops_per_s_jobs1\": "
      << fixed2(ops_per_s(batch_ms_jobs1, eval_ops)) << ",\n"
      << "  \"model_eval_batch_ops_per_s_jobsN\": "
      << fixed2(ops_per_s(batch_ms_jobsn, eval_ops)) << ",\n"
      << "  \"batch_speedup_jobs1\": " << fixed2(batch_speedup) << ",\n"
      << "  \"sweep_step_ns_per_op_jobs1\": "
      << fixed2(ns_per_op(sweep_ms_jobs1, sweep_ops)) << ",\n"
      << "  \"sweep_step_ns_per_op_jobsN\": "
      << fixed2(ns_per_op(sweep_ms_jobsn, sweep_ops)) << ",\n"
      << "  \"sweep_step_ops_per_s_jobs1\": "
      << fixed2(ops_per_s(sweep_ms_jobs1, sweep_ops)) << ",\n"
      << "  \"sweep_step_ops_per_s_jobsN\": "
      << fixed2(ops_per_s(sweep_ms_jobsn, sweep_ops)) << ",\n"
      << "  \"huber_irls_iterations\": " << robust.iterations << ",\n"
      << "  \"huber_irls_ns_per_iteration\": "
      << fixed2(ns_per_op(irls_ms, irls_iters)) << ",\n"
      << "  \"huber_irls_iterations_per_s\": "
      << fixed2(ops_per_s(irls_ms, irls_iters)) << ",\n"
      << "  \"bootstrap_ns_per_resample_jobs1\": "
      << fixed2(ns_per_op(boot_ms_jobs1, double(kResamples))) << ",\n"
      << "  \"bootstrap_ns_per_resample_jobsN\": "
      << fixed2(ns_per_op(boot_ms_jobsn, double(kResamples))) << ",\n"
      << "  \"bootstrap_resamples_per_s_jobs1\": "
      << fixed2(ops_per_s(boot_ms_jobs1, double(kResamples))) << ",\n"
      << "  \"bootstrap_resamples_per_s_jobsN\": "
      << fixed2(ops_per_s(boot_ms_jobsn, double(kResamples))) << ",\n"
      << "  \"power_integration_ns_per_op_jobs1\": "
      << fixed2(ns_per_op(integ_ms_jobs1, integ_ops)) << ",\n"
      << "  \"power_integration_ns_per_op_jobsN\": "
      << fixed2(ns_per_op(integ_ms_jobsn, integ_ops)) << ",\n"
      << "  \"power_integration_ops_per_s_jobs1\": "
      << fixed2(ops_per_s(integ_ms_jobs1, integ_ops)) << ",\n"
      << "  \"power_integration_ops_per_s_jobsN\": "
      << fixed2(ops_per_s(integ_ms_jobsn, integ_ops)) << "\n"
      << "}\n";
  return rme::cli::kExitOk;
}
