// Reproduces the §VII work-communication trade-off analysis around
// eq. (10): for a transform (W, Q) -> (fW, Q/m), when is there a
// "greenup" dE > 1, when a speedup, and what are the hard limits on f?

#include <iostream>

#include "bench_common.hpp"

using namespace rme;

int main() {
  bench::print_heading(
      "SsVII / eq. (10): work-communication trade-off, Fermi Table II, "
      "pi0 = 0");

  MachineParams m = presets::fermi_table2();  // pi0 = 0, B_eps > B_tau

  // Part 1: the eq. (10) bound f* = 1 + ((m-1)/m) B_eps/I and its hard
  // m->inf limit 1 + B_eps/I, across baseline intensities.
  {
    report::Table t({"baseline I", "f* (m=2)", "f* (m=4)", "f* (m=16)",
                     "limit m->inf (1 + B_eps/I)"});
    for (double i : {0.5, 1.0, 2.0, 3.6, 8.0, 14.4, 64.0}) {
      t.add_row({report::fmt(i, 3),
                 report::fmt(greenup_work_bound(m, i, 2.0), 4),
                 report::fmt(greenup_work_bound(m, i, 4.0), 4),
                 report::fmt(greenup_work_bound(m, i, 16.0), 4),
                 report::fmt(greenup_work_limit(m, i), 4)});
    }
    t.print(std::cout);
    std::cout << "\nCompute-bound baselines (I >= B_tau): the limit is "
                 "1 + B_eps/B_tau = "
              << report::fmt(greenup_work_limit_compute_bound(m), 4)
              << " (1 + the balance gap).\n\n";
  }

  // Part 2: outcome classification across the (f, m) grid for a
  // baseline in the interesting window B_tau < I < B_eps (compute-bound
  // in time, memory-bound in energy).
  {
    const double i = 8.0;
    const KernelProfile base = KernelProfile::from_intensity(i, 1e9);
    std::cout << "Outcome grid at baseline I = " << i
              << " (between B_tau = " << report::fmt(m.time_balance(), 3)
              << " and B_eps = " << report::fmt(m.energy_balance(), 3)
              << "):\n";
    report::Table t({"f \\ m", "1.5", "2", "4", "16"});
    for (double f : {1.0, 1.1, 1.25, 1.5, 2.0, 3.0}) {
      std::vector<std::string> row = {report::fmt(f, 3)};
      for (double mult : {1.5, 2.0, 4.0, 16.0}) {
        row.push_back(to_string(classify(m, base, Transform{f, mult})));
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }

  // Part 3: exact greenup/speedup values along the eq. (10) boundary,
  // and with constant power switched on (eq. 10 is pi0 = 0; with pi0 the
  // true break-even f is smaller for compute-bound baselines).
  {
    std::cout << "\nBoundary check (f = f*, m = 4): greenup is exactly 1 "
                 "with pi0 = 0, below 1 with pi0 > 0:\n";
    report::Table t({"baseline I", "dE at f* (pi0 = 0)",
                     "dE at f* (GTX 580 double, pi0 = 122 W)"});
    const MachineParams gtx = presets::gtx580(Precision::kDouble);
    for (double i : {2.0, 4.0, 8.0}) {
      const KernelProfile base = KernelProfile::from_intensity(i, 1e9);
      const double f_fermi = greenup_work_bound(m, i, 4.0);
      const double f_gtx = greenup_work_bound(gtx, i, 4.0);
      t.add_row({report::fmt(i, 3),
                 report::fmt(greenup(m, base, Transform{f_fermi, 4.0}), 6),
                 report::fmt(greenup(gtx, base, Transform{f_gtx, 4.0}), 6)});
    }
    t.print(std::cout);
  }
  return 0;
}
