// Ablation: DVFS / race-to-halt (§II-D, §V-B, §VII).  Frequency sweeps
// on the i7-950 under the DVFS model: for compute-bound kernels on a
// high-constant-power machine, f_max minimizes energy (race-to-halt);
// for memory-bound kernels, or with pi0 -> 0, it does not.

#include <iostream>

#include "bench_common.hpp"

using namespace rme;

namespace {

void sweep_table(const char* label, const MachineParams& base,
                 const DvfsModel& dvfs, const KernelProfile& k) {
  std::cout << label << "\n";
  report::Table t({"f ratio", "time [ms]", "energy [J]", "avg power [W]"});
  for (const DvfsPoint& p : frequency_sweep(base, dvfs, k, 7)) {
    t.add_row({report::fmt(p.ratio, 3), report::fmt(p.seconds.value() * 1e3, 4),
               report::fmt(p.joules.value(), 4), report::fmt(p.avg_watts.value(), 4)});
  }
  t.print(std::cout);
  const DvfsPoint best = min_energy_point(base, dvfs, k);
  std::cout << "Energy-optimal ratio: " << report::fmt(best.ratio, 3)
            << (race_to_halt_optimal(base, dvfs, k)
                    ? "  -> race-to-halt IS optimal\n\n"
                    : "  -> race-to-halt is NOT optimal\n\n");
}

}  // namespace

int main() {
  bench::print_heading("Ablation: DVFS and race-to-halt on the i7-950");

  const MachineParams cpu = presets::i7_950(Precision::kDouble);
  const DvfsModel dvfs;

  const KernelProfile compute_bound =
      KernelProfile::from_intensity(16.0 * cpu.time_balance(), 5e9);
  const KernelProfile memory_bound =
      KernelProfile::from_intensity(cpu.time_balance() / 16.0, 5e9);

  sweep_table("Compute-bound kernel (I = 16 B_tau), pi0 = 122 W:", cpu, dvfs,
              compute_bound);

  DvfsModel loose = dvfs;
  loose.min_ratio = 0.5;
  sweep_table("Memory-bound kernel (I = B_tau/16), pi0 = 122 W:", cpu, loose,
              memory_bound);

  MachineParams no_const = cpu;
  no_const.const_power = Watts{0.0};
  sweep_table("Compute-bound kernel with pi0 = 0 (the SsV-B hypothetical):",
              no_const, dvfs, compute_bound);

  std::cout
      << "Summary: today's 122 W constant power makes finishing fast the "
         "dominant energy\nstrategy for compute-bound work (SsV-B); memory-"
         "bound kernels and hypothetical\nzero-constant-power machines both "
         "break race-to-halt, as the model predicts.\n";
  return 0;
}
