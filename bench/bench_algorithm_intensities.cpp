// Reproduces the §II-A discussion quantitatively: the inherent
// intensity of classic algorithms as a function of fast-memory capacity
// Z, matmul's O(√Z) bound vs the reduction's O(1), and the cache
// capacity each algorithm needs to be time- vs energy-efficient — the
// balance gap as a hardware-provisioning rule.

#include <iostream>

#include "bench_common.hpp"

using namespace rme;

int main() {
  bench::print_heading(
      "SsII-A: algorithmic intensity vs fast-memory capacity Z");

  const double n = 4096.0;  // matrix dim; element counts below use 1e8
  {
    report::Table t({"Z", "matmul I", "FFT I", "stencil I", "SpMV I",
                     "reduction I"});
    for (double z = 1 << 14; z <= double(1 << 26); z *= 4.0) {
      t.add_row({report::fmt_si(z, "B", 3),
                 report::fmt(matmul_model().intensity(n, z), 4),
                 report::fmt(fft_model().intensity(1e8, z), 4),
                 report::fmt(stencil_model().intensity(1e8, z), 4),
                 report::fmt(spmv_model().intensity(1e8, z), 4),
                 report::fmt(reduction_model().intensity(1e8, z), 4)});
    }
    t.print(std::cout);
    std::cout << "\nMatmul intensity grows as sqrt(Z) (Hong-Kung bound: "
                 "x2 Z buys at most x1.41);\nFFT grows as log Z; "
                 "streaming kernels are Z-independent — 'intensity "
                 "measures\nthe inherent locality of an algorithm' "
                 "(SsII-A).\n\n";
  }

  bench::print_heading(
      "Fast memory needed to be time- vs energy-efficient (matmul, n=4096)");
  {
    report::Table t({"Machine", "Z for I >= B_tau", "Z for energy-eff.",
                     "ratio"});
    for (const MachineParams& m :
         {presets::fermi_table2(), presets::gtx580(Precision::kDouble),
          presets::i7_950(Precision::kDouble)}) {
      const double zt = z_for_time_bound(matmul_model(), n, m);
      const double ze = z_for_energy_bound(matmul_model(), n, m);
      t.add_row({m.name, report::fmt_si(zt, "B", 3),
                 report::fmt_si(ze, "B", 3), report::fmt(ze / zt, 3)});
    }
    t.print(std::cout);
    std::cout
        << "\nOn the pi0 = 0 Fermi the energy target needs ~16x the cache "
           "(I ~ sqrt(Z), gap = 4x);\non today's machines constant power "
           "pulls the effective energy balance BELOW B_tau,\nso "
           "energy-efficiency needs LESS cache than time-efficiency "
           "(ratio < 1) — and\nrace-to-halt wins (SsV-B).\n";
  }

  bench::print_heading("FMM_U q-scaling (SsV-C: 'typically compute-bound')");
  {
    const MachineParams m = presets::gtx580(Precision::kDouble);
    report::Table t({"octree level", "mean pts/leaf", "intensity (flop:B)",
                     "bound in time", "bound in energy"});
    for (const auto& p :
         fmm::q_scaling_study(200000, {6, 5, 4, 3, 2}, m)) {
      t.add_row({std::to_string(p.level),
                 report::fmt(p.mean_leaf_population, 4),
                 report::fmt(p.intensity, 4), to_string(p.time_bound_on),
                 to_string(p.energy_bound_on)});
    }
    t.print(std::cout);
    std::cout << "\nIntensity grows linearly with leaf population (O(q^2) "
                 "flops per O(q) data); at\nthe paper's q ~ hundreds the "
                 "phase is compute-bound in both metrics.\n";
  }
  return 0;
}
