// Region maps: 2-D pictures of the paper's core analyses.
//   1. Trade-off outcomes over the (f, m) plane (§VII) as a category
//      map — where speedup+greenup, greenup-only, etc. live.
//   2. Absolute energy efficiency over (intensity, pi0) as a heatmap —
//      the race-to-halt inversion made visible.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"

using namespace rme;

int main() {
  bench::print_heading(
      "Trade-off outcome map over (f, m), Fermi Table II, baseline I = 8");

  {
    const MachineParams m = []() {
      MachineParams f = presets::fermi_table2();
      f.const_power = Watts{0.0};
      return f;
    }();
    const KernelProfile base = KernelProfile::from_intensity(8.0, 1e9);

    std::vector<double> fs;          // rows: work multiplier (top = high)
    for (double f = 3.0; f >= 1.0; f -= 0.1) fs.push_back(f);
    std::vector<double> ms;          // cols: traffic divisor
    for (double mm = 1.0; mm <= 16.0; mm *= std::pow(2.0, 0.25)) {
      ms.push_back(mm);
    }
    std::vector<std::vector<int>> cats;
    for (double f : fs) {
      std::vector<int> row;
      for (double mm : ms) {
        row.push_back(
            static_cast<int>(classify(m, base, Transform{f, mm})));
      }
      cats.push_back(std::move(row));
    }
    report::HeatmapConfig cfg;
    cfg.title = "rows: f (work x)   cols: m (traffic /)";
    cfg.x_label = "m (log scale 1..16)";
    cfg.y_label = "f";
    const report::CategoryMap map(
        ms, fs, cats,
        {{'B', "speedup+greenup"},
         {'T', "speedup-only"},
         {'G', "greenup-only"},
         {'.', "neither"}},
        cfg);
    map.print(std::cout);
    std::cout << "\nBaseline I = 8 lies between B_tau = 3.6 and B_eps = "
                 "14.4: extra work always\ncosts time (no 'T' region), "
                 "but the eq. (10) wedge of 'G' greenups opens as m\n"
                 "grows — the SsII-D window where the two objectives "
                 "part ways.\n\n";
  }

  bench::print_heading(
      "Energy efficiency [GFLOP/J] over intensity x pi0, GTX 580 double");
  {
    const MachineParams base = presets::gtx580(Precision::kDouble);
    std::vector<double> xs = log_intensity_grid(0.25, 64.0, 8);
    std::vector<double> pi0s;
    for (double p = 200.0; p >= 0.0; p -= 20.0) pi0s.push_back(p);
    const report::Heatmap map = report::Heatmap::sample(
        xs, pi0s,
        [&](double intensity, double pi0) {
          MachineParams m = base;
          m.const_power = Watts{pi0};
          return achieved_flops_per_joule(m, intensity).value() / kGiga;
        },
        [] {
          report::HeatmapConfig cfg;
          cfg.title = "rows: pi0 [W] (0 at bottom)   cols: intensity";
          cfg.x_label = "intensity (flop:B, log)";
          cfg.y_label = "pi0 [W]";
          return cfg;
        }());
    map.print(std::cout);
    std::cout << "\nEfficiency climbs toward the bottom right (high "
                 "intensity, low constant power);\nthe pi0 ~ 57 W row is "
                 "where the GTX 580's race-to-halt inversion happens\n"
                 "(bench_ablation_const_power).\n";
  }
  return 0;
}
