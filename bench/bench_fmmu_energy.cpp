// Reproduces the §V-C FMM_U experiment:
//   1. eq. (2) with fitted coefficients underestimates measured variant
//      energy (paper: by ~33% on average);
//   2. dividing the reference variant's residual by its L1+L2 traffic
//      yields a cache energy cost (paper: ~187 pJ/Byte);
//   3. applying that cost to all other cache-only variants brings the
//      median error down (paper: 4.1%).

#include <iostream>

#include "bench_common.hpp"

using namespace rme;

int main() {
  bench::print_heading("SsV-C: FMM U-list energy estimation on the GTX 580");

  // Problem: a uniform cloud, leaves of O(q) points (q ~ tens-hundreds;
  // paper says hundreds-thousands — scaled down so the trace-driven
  // cache simulation finishes in seconds).
  const std::size_t n = 6000;
  const fmm::Octree tree(fmm::uniform_cloud(n, 2013), 3);
  const fmm::UList ulist(tree);
  const auto counts = fmm::count_interactions(tree, ulist);
  std::cout << "n = " << n << " points, level-" << tree.level()
            << " octree, " << tree.leaves().size() << " leaves, mean "
            << report::fmt(tree.mean_leaf_population(), 3)
            << " points/leaf, mean |U(B)| = "
            << report::fmt(ulist.mean_list_length(), 3) << "\n"
            << "Interactions: " << report::fmt(counts.pairs, 4)
            << " pairs = " << report::fmt_si(counts.flops, "FLOP")
            << " (11 flops/pair, Algorithm 1)\n\n";

  fmm::UlistPlatform platform{presets::gtx580(Precision::kDouble)};

  // The §V-C population: cache-only (single-threaded) double-precision
  // variants; the paper used ~160 L1/L2-only kernels of its ~390.
  std::vector<fmm::VariantSpec> specs;
  for (const fmm::VariantSpec& s : fmm::variant_grid()) {
    if (s.threads == 1) specs.push_back(s);
  }
  std::cout << "Variant population: " << specs.size()
            << " cache-only kernels (layout x block x unroll x precision)\n";

  const auto observations =
      fmm::observe_variants(tree, ulist, specs, platform);
  const fmm::UlistStudy study = fmm::run_ulist_study(
      observations, platform.machine,
      fmm::reference_variant(Precision::kDouble));

  report::Table t({"Quantity", "Paper (SsV-C)", "This reproduction"});
  t.add_row({"eq. (2) estimate error (mean, signed)", "-33%",
             report::fmt(100.0 * study.two_level.mean_signed_rel_error, 3) +
                 "%"});
  t.add_row({"calibrated cache energy", "187 pJ/Byte",
             report::fmt_si(study.calibrated_cache_eps.value(), "J/Byte")});
  t.add_row({"cache-aware median |error|", "4.1%",
             report::fmt(100.0 * study.cache_aware.median_abs_rel_error, 3) +
                 "%"});
  t.add_row({"validated variants", "~160",
             std::to_string(study.validated_variants)});
  t.print(std::cout);

  std::cout << "\nPer-variant detail (first 12 by name):\n";
  report::Table d({"Variant", "DRAM MB", "L1+L2 MB", "measured mJ",
                   "eq.(2) mJ", "cache-aware mJ"});
  std::size_t shown = 0;
  for (const auto& o : observations) {
    if (shown++ >= 12) break;
    d.add_row({o.spec.name(),
               report::fmt(o.counters.dram_bytes / 1e6, 3),
               report::fmt(o.counters.cache_bytes() / 1e6, 4),
               report::fmt(o.sample.joules.value() * 1e3, 4),
               report::fmt(fit::estimate_energy_two_level(platform.machine,
                                                          o.sample)
                                   .value() * 1e3,
                           4),
               report::fmt(fit::estimate_energy_with_cache(
                               platform.machine, o.sample,
                               study.calibrated_cache_eps)
                                   .value() * 1e3,
                           4)});
  }
  d.print(std::cout);
  return 0;
}
