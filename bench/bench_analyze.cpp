// Analyzer throughput bench (ROADMAP item 5 trajectory): times
// rme::analyze::analyze_project over the real tree — src, tools,
// bench, tests — and emits a machine-readable BENCH_analyze.json so
// perf PRs have a committed before/after record.
//
// Three arms, no cache, best-of-`--repeats` wall time:
//   * per-file rules + layering + lock-order at jobs=1 — the PR-7
//     registry, i.e. the analyzer *before* the call-graph family;
//   * the full registry (call graph + hot-path + wire rules) at
//     jobs=1 — the overhead the semantic layer adds;
//   * the full registry at jobs=N (default: hardware concurrency).
//
// The committed JSON pins the acceptance bound for this subsystem:
// the call-graph family must add <= 25% to full-tree wall time at
// jobs=1 (`callgraph_overhead_pct_jobs1`).
//
//   --jobs N       parallel arm's worker count (0 = hardware, default)
//   --repeats R    timed repetitions per arm, minimum kept (default 3)
//   --json PATH    output path (default BENCH_analyze.json in cwd)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "rme/analyze/analyzer.hpp"
#include "rme/analyze/rules.hpp"
#include "rme/rme.hpp"

namespace {

namespace an = rme::analyze;

struct Arm {
  std::string name;
  double best_ms = 0.0;
  an::ProjectReport report;
};

/// Best-of-`repeats` wall time for one configuration.
Arm run_arm(const std::string& name,
            const std::vector<std::filesystem::path>& roots,
            const std::vector<std::string>& selectors, unsigned jobs,
            int repeats) {
  Arm arm;
  arm.name = name;
  arm.best_ms = 1e300;
  an::ProjectOptions options;
  options.jobs = jobs;
  options.selectors = selectors;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    an::ProjectReport report = an::analyze_project(roots, options);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < arm.best_ms) arm.best_ms = ms;
    if (r == 0) arm.report = std::move(report);
  }
  return arm;
}

double files_per_s(const Arm& arm) {
  return arm.best_ms > 0.0
             ? double(arm.report.files_scanned) / (arm.best_ms / 1000.0)
             : 0.0;
}

double ns_per_file(const Arm& arm) {
  return arm.report.files_scanned > 0
             ? arm.best_ms * 1e6 / double(arm.report.files_scanned)
             : 0.0;
}

/// Two-decimal fixed formatting keeps the committed JSON readable.
std::string fixed2(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = 0;
  int repeats = 3;
  std::string json_path = "BENCH_analyze.json";
  for (int i = 1; i < argc; ++i) {
    const auto fail = [&](const char* message) {
      std::fprintf(stderr, "%s\nusage: %s [--jobs N] [--repeats R] "
                           "[--json PATH]\n",
                   message, argv[0]);
      return rme::cli::kExitUsage;
    };
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      try {
        jobs = rme::cli::parse_unsigned32(argv[++i], "--jobs");
      } catch (const rme::cli::UsageError& e) {
        return fail(e.what());
      }
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      try {
        repeats = std::max(
            1, int(rme::cli::parse_unsigned32(argv[++i], "--repeats")));
      } catch (const rme::cli::UsageError& e) {
        return fail(e.what());
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      return fail("unknown flag");
    }
  }
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());

  const std::filesystem::path root = RME_TREE_ROOT;
  const std::vector<std::filesystem::path> roots{
      root / "src", root / "tools", root / "bench", root / "tests"};

  // The PR-7 registry: every per-file rule plus the two original
  // project rules.  Comparing against it isolates what the call-graph
  // family costs.
  std::vector<std::string> before;
  for (const an::Rule* rule : an::all_rules()) {
    before.emplace_back(rule->name());
  }
  before.emplace_back("layering");
  before.emplace_back("lock-order");

  const Arm base1 = run_arm("per-file+layering+lock-order, jobs=1", roots,
                            before, 1, repeats);
  const Arm full1 = run_arm("full registry, jobs=1", roots, {}, 1, repeats);
  const Arm fullN = run_arm("full registry, jobs=" + std::to_string(jobs),
                            roots, {}, jobs, repeats);
  const double overhead_pct =
      base1.best_ms > 0.0
          ? (full1.best_ms - base1.best_ms) / base1.best_ms * 100.0
          : 0.0;

  for (const Arm* arm : {&base1, &full1, &fullN}) {
    std::printf("%-42s %8.2f ms  %7.0f files/s  %9.0f ns/file\n",
                arm->name.c_str(), arm->best_ms, files_per_s(*arm),
                ns_per_file(*arm));
  }
  std::printf("call-graph family overhead at jobs=1: %+.1f%%\n",
              overhead_pct);

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "bench_analyze: cannot write %s\n",
                 json_path.c_str());
    return rme::cli::kExitDegraded;
  }
  out << "{\n"
      << "  \"bench\": \"rme_analyze full tree (src tools bench tests)\",\n"
      << "  \"files\": " << full1.report.files_scanned << ",\n"
      << "  \"tokens\": " << full1.report.tokens_scanned << ",\n"
      << "  \"rules\": " << full1.report.rules_run.size() << ",\n"
      << "  \"repeats\": " << repeats << ",\n"
      << "  \"jobs_parallel_arm\": " << jobs << ",\n"
      << "  \"before_ms_jobs1\": " << fixed2(base1.best_ms) << ",\n"
      << "  \"full_ms_jobs1\": " << fixed2(full1.best_ms) << ",\n"
      << "  \"full_ms_jobsN\": " << fixed2(fullN.best_ms) << ",\n"
      << "  \"files_per_s_jobs1\": " << fixed2(files_per_s(full1)) << ",\n"
      << "  \"files_per_s_jobsN\": " << fixed2(files_per_s(fullN)) << ",\n"
      << "  \"ns_per_file_jobs1\": " << fixed2(ns_per_file(full1)) << ",\n"
      << "  \"ns_per_file_jobsN\": " << fixed2(ns_per_file(fullN)) << ",\n"
      << "  \"callgraph_overhead_pct_jobs1\": " << fixed2(overhead_pct)
      << "\n"
      << "}\n";
  return rme::cli::kExitOk;
}
