// Reproduces §V-A: sanity-checking the fitted Table IV coefficients
// against Keckler et al.'s published circuit-level energies — the
// instruction-overhead estimate and the bottom-up memory-energy range.

#include <iostream>

#include "bench_common.hpp"

using namespace rme;

int main() {
  bench::print_heading(
      "SsV-A: fitted coefficients vs circuit-level estimates (GTX 580)");

  const MachineParams gtx = presets::gtx580(Precision::kDouble);
  const FlopOverhead f = flop_overhead(gtx.energy_per_flop);
  {
    report::Table t({"Quantity", "Paper", "This library"});
    t.add_row({"fitted eps_d", "212 pJ/flop",
               report::fmt(f.fitted_pj, 4) + " pJ/flop"});
    t.add_row({"FMA functional unit (Keckler)", "50 pJ = 25 pJ/flop",
               report::fmt(f.functional_unit_pj, 4) + " pJ/flop"});
    t.add_row({"ratio", "'about eight times larger'",
               report::fmt(f.overhead_ratio, 3) + "x"});
    t.add_row({"instruction/uarch overhead", "~187 pJ/flop",
               report::fmt(f.overhead_pj, 4) + " pJ/flop"});
    t.print(std::cout);
  }

  std::cout << "\n";
  const MemEnergyCrossCheck c =
      mem_energy_cross_check(gtx.energy_per_byte,
                             EnergyPerFlop{f.overhead_pj * 1e-12});
  {
    report::Table t({"Memory-energy component", "Paper", "This library"});
    t.add_row({"DRAM + interface + wire (Keckler)", "253-389 pJ/B",
               report::fmt(KecklerEstimates{}.dram_low_pj_per_b, 4) + "-" +
                   report::fmt(KecklerEstimates{}.dram_high_pj_per_b, 4) +
                   " pJ/B"});
    t.add_row({"instruction overhead per byte (sp)", "~47 pJ/B",
               report::fmt(c.overhead_pj_per_b, 4) + " pJ/B"});
    t.add_row({"L1+L2 SRAM read/write", "~7 pJ/B",
               report::fmt(c.cache_pj_per_b, 3) + " pJ/B"});
    t.add_row({"bottom-up total", "307-443 pJ/B",
               report::fmt(c.bottom_up_low_pj_per_b, 4) + "-" +
                   report::fmt(c.bottom_up_high_pj_per_b, 4) + " pJ/B"});
    t.add_row({"fitted eps_mem", "513 pJ/B",
               report::fmt(c.fitted_pj_per_b, 4) + " pJ/B"});
    t.add_row({"unexplained (cache mgmt, tags)", "fitted > bottom-up",
               report::fmt(c.unexplained_pj_per_b, 3) + " pJ/B"});
    t.print(std::cout);
  }

  std::cout << "\nAlso from SsV-A: measured GTX 580 idle power was "
            << presets::kGtx580IdleWatts
            << " W, so the fitted pi0 = 122 W 'accounts for much more "
               "than just idle power'.\n";
  return 0;
}
