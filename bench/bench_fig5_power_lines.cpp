// Reproduces Fig. 5: measured average power vs the "power line" model,
// normalized to flop+const power, for both platforms and precisions.
// On the GTX 580 in single precision the model demands up to ~380 W;
// NVIDIA's 244 W board limit clips the measured points near B_tau —
// the discrepancy the paper calls out in §V-B.

#include <iostream>

#include "bench_common.hpp"

using namespace rme;

namespace {

void run_subplot(const bench::Platform& platform, Precision prec,
                 unsigned jobs, obs::Tracer* tracer) {
  const MachineParams& m = platform.machine;
  bench::print_heading(std::string("Fig. 5 subplot: ") + platform.label);

  const double norm = (m.flop_power() + m.const_power).value();
  std::cout << "Normalization (pi_flop + pi0) = " << report::fmt(norm, 4)
            << " W.  Model max power = " << report::fmt(max_power(m).value(), 4)
            << " W at I = B_tau = " << report::fmt(m.time_balance(), 3);
  if (max_power(m) > platform.power_cap) {
    std::cout << "  [exceeds the " << report::fmt(platform.power_cap.value(), 3)
              << " W board cap]";
  }
  std::cout << "\n\n";

  const auto session = bench::make_session(platform);
  report::Table t({"I (flop:B)", "measured W", "model W",
                   "measured/(flop+const)", "model/(flop+const)", "capped"});
  for (const power::SessionResult& r :
       session.measure_sweep(bench::fig4_sweep(prec), jobs, tracer)) {
    const double i = r.kernel.intensity();
    t.add_row({report::fmt(i, 4), report::fmt(r.watts.median, 4),
               report::fmt(average_power(m, i).value(), 4),
               report::fmt(r.watts.median / norm, 3),
               report::fmt(normalized_power_flop_const(m, i), 3),
               r.any_capped ? "yes" : ""});
  }
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::BenchObs bobs(args);
  run_subplot(bench::gtx580_platform(Precision::kDouble), Precision::kDouble,
              args.jobs, bobs.tracer());
  run_subplot(bench::i7_950_platform(Precision::kDouble), Precision::kDouble,
              args.jobs, bobs.tracer());
  run_subplot(bench::gtx580_platform(Precision::kSingle), Precision::kSingle,
              args.jobs, bobs.tracer());
  run_subplot(bench::i7_950_platform(Precision::kSingle), Precision::kSingle,
              args.jobs, bobs.tracer());

  std::cout << "Shape checks: power peaks at I = B_tau in every subplot; "
               "the GTX 580 single-\nprecision measured points clip at the "
               "244 W cap near B_tau while the model\ndemands ~380 W "
               "(paper: 387 W), reproducing the Fig. 5b discrepancy.\n";
  return bobs.finish() ? cli::kExitOk : cli::kExitDegraded;
}
