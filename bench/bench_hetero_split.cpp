// Extension bench: heterogeneous CPU+GPU work splitting under the
// energy-roofline characterization (the Amdahl-style lineage of the
// paper's §I).  Compares the time-optimal and energy-optimal splits of
// a (W, Q) workload across the i7-950 and GTX 580 under both idle
// policies.

#include <iostream>

#include "bench_common.hpp"

using namespace rme;

int main() {
  bench::print_heading(
      "Heterogeneous split: GTX 580 (A) + i7-950 (B), double precision");

  const MachineParams gpu = presets::gtx580(Precision::kDouble);
  const MachineParams cpu = presets::i7_950(Precision::kDouble);

  for (IdlePolicy policy : {IdlePolicy::kAlwaysOn, IdlePolicy::kPowerGated}) {
    std::cout << "Idle policy: " << to_string(policy) << "\n";
    report::Table t({"I (flop:B)", "time-opt alpha", "T [s]", "E [J]",
                     "energy-opt alpha", "T [s]", "E [J]", "disagree?"});
    for (double i : {0.25, 0.5, 1.0, 2.0, 4.0, 16.0, 64.0}) {
      const KernelProfile k = KernelProfile::from_intensity(i, 1e11);
      const HeteroSplit ts = time_optimal_split(gpu, cpu, k, policy);
      const HeteroSplit es = energy_optimal_split(gpu, cpu, k, policy);
      t.add_row({report::fmt(i, 4), report::fmt(ts.alpha, 3),
                 report::fmt(ts.seconds.value(), 3), report::fmt(ts.joules.value(), 4),
                 report::fmt(es.alpha, 3), report::fmt(es.seconds.value(), 3),
                 report::fmt(es.joules.value(), 4),
                 split_optima_disagree(gpu, cpu, k, policy) ? "YES" : "no"});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  std::cout
      << "Reading the tables: minimizing time shares ~20% of compute-bound "
         "work with the\nCPU (its peak-rate share), but the CPU is ~3.6x "
         "less energy-efficient, so the\nenergy optimum under power gating "
         "leaves it idle -- the balance-gap story at\nsystem scale.  Under "
         "always-on idle power the gap narrows: once both devices\nburn "
         "pi0 anyway, using the CPU is closer to free.\n";
  return 0;
}
