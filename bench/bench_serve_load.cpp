// Load generator for the rme::serve daemon (docs/SERVE.md): synthesizes
// a seeded, deterministic request mix (predict batches, rank panels,
// whatif edits, periodic ingest + stats frames), drives it through the
// real serve path (Server::serve_stream — frame loop, arena, engine),
// and reports the per-endpoint traffic breakdown.
//
//   --requests N  number of frames to generate (default 2000; the last
//                 frame is always `shutdown` so the drain path runs)
//   --jobs N      within-batch parallelism (byte-identical responses at
//                 any N — the rme::exec determinism contract)
//   --csv PATH    emit the traffic breakdown as CSV
//   --trace PATH / --metrics
//                 per-endpoint latency histograms live under
//                 span:serve.<op> in the obs summary / Chrome trace
//
// The generated mix and every response byte are pure functions of the
// request count: reruns (and any --jobs) reproduce the same stream.

#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace rme;
using artifact::Json;

namespace {

/// Deterministic request mix, one frame per index (the derive_seed
/// discipline: frame i's shape depends only on (seed, i)).
std::string make_request(std::size_t i, const std::string& artifact_path) {
  const std::uint64_t seed = exec::derive_seed(0x5E4E, i);
  if (i % 251 == 0 && !artifact_path.empty()) {
    return R"({"op":"ingest","name":"load","artifact":")" + artifact_path +
           "\"}";
  }
  if (i % 59 == 0) return R"({"op":"stats"})";
  static const char* kMachines[] = {"fermi", "gtx580-sp", "gtx580-dp",
                                    "i7-sp", "i7-dp"};
  const std::string machine = kMachines[seed % 5];
  if (i % 17 == 0) {
    return R"({"op":"whatif","machine":")" + machine +
           R"(","edits":{"pi0_w":0},"batch":[)"
           R"({"name":"axpy","flops":2e6,"bytes":24e6},)"
           R"({"name":"dgemm","flops":4e9,"bytes":25e7}]})";
  }
  if (i % 11 == 0) {
    return R"({"op":"rank","machine":")" + machine +
           R"(","by":"edp","variants":[{"flops":2e9,"bytes":1e9},)"
           R"({"flops":2e9,"bytes":25e7},{"flops":4e9,"bytes":25e7}]})";
  }
  const std::size_t batch = 1 + seed % 8;
  std::string frame =
      R"({"op":"predict","machine":")" + machine + R"(","batch":[)";
  for (std::size_t k = 0; k < batch; ++k) {
    const std::uint64_t s = exec::derive_seed(seed, k);
    if (k != 0) frame += ',';
    frame += "{\"flops\":" +
             artifact::format_number(1e6 + double(s % 1000000)) +
             ",\"bytes\":" +
             artifact::format_number(1e5 + double((s >> 24) % 100000)) + "}";
  }
  frame += "]}";
  return frame;
}

}  // namespace

int main(int argc, char** argv) {
  // Pull --requests out before handing the standard flags to the
  // shared parser (which rejects flags it does not know).
  std::size_t requests = 2000;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--requests" && i + 1 < argc) {
      try {
        requests = cli::parse_size(argv[++i], "--requests");
      } catch (const cli::UsageError& e) {
        std::cerr << e.what() << "\n";
        return cli::kExitUsage;
      }
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const bench::BenchArgs args = bench::parse_bench_args(
      static_cast<int>(passthrough.size()), passthrough.data());
  bench::BenchObs obs_rig(args);
  if (requests < 2) requests = 2;

  bench::print_heading("rme::serve load generator (docs/SERVE.md)");

  // Ingest frames re-load the checked-in golden session journal.
  const std::string artifact_path = RME_SESSION_ARTIFACT;

  std::string input;
  input.reserve(requests * 96);
  for (std::size_t i = 0; i + 1 < requests; ++i) {
    input += make_request(i, artifact_path);
    input += '\n';
  }
  input += "{\"op\":\"shutdown\"}\n";

  serve::ServerOptions options;
  options.jobs = args.jobs;
  options.tracer = obs_rig.tracer();
  serve::Server server(options);
  std::istringstream in(input);
  std::ostringstream out;
  const serve::ServeStats stats = server.serve_stream(in, out);
  const serve::EngineStats engine_stats = server.engine().stats();

  // Per-endpoint traffic breakdown off the response stream itself.
  std::map<std::string, std::size_t> ok_by_op;
  std::size_t error_responses = 0;
  std::uint64_t last_generation = 0;
  bool generations_monotonic = true;
  std::istringstream responses(out.str());
  std::string line;
  while (std::getline(responses, line)) {
    const Json response = Json::parse(line);
    if (!response.at("ok").as_bool()) {
      ++error_responses;
      continue;
    }
    ++ok_by_op[response.at("op").as_string()];
    const std::uint64_t generation = response.at("gen").as_count();
    if (generation < last_generation) generations_monotonic = false;
    last_generation = generation;
  }

  report::Table table({"endpoint", "ok responses"});
  for (const auto& [op, count] : ok_by_op) {
    table.add_row({op, std::to_string(count)});
  }
  table.print(std::cout);
  std::cout << "\nframes=" << stats.frames_in
            << " responses=" << stats.responses
            << " errors=" << error_responses
            << " stalls=" << engine_stats.queue_stalls
            << " batch_items=" << engine_stats.batch_items
            << " gen=" << engine_stats.generation
            << " arena_high_water=" << stats.arena_high_water
            << "\ngenerations " << (generations_monotonic ? "monotonic" : "NOT MONOTONIC")
            << "; responses are byte-identical at any --jobs.\n";

  std::ofstream csv_file;
  if (!args.csv_path.empty()) {
    csv_file.open(args.csv_path);
    csv_file << "endpoint,ok_responses\n";
    for (const auto& [op, count] : ok_by_op) {
      csv_file << op << ',' << count << '\n';
    }
    csv_file << "errors," << error_responses << '\n';
  }

  int code = cli::kExitOk;
  if (!bench::finish_csv(csv_file, args.csv_path)) code = cli::kExitDegraded;
  if (!obs_rig.finish()) code = cli::kExitDegraded;
  if (!generations_monotonic || stats.responses != requests) {
    code = cli::kExitDegraded;
  }
  return code;
}
