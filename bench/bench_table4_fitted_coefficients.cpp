// Reproduces Table IV: fitted energy coefficients via the eq. (9)
// linear regression over the microbenchmark sweep measurements,
//    E/W = eps_s + eps_mem (Q/W) + pi0 (T/W) + d_eps_d R,
// exactly as §IV instantiated the model (fitted because manufacturers
// publish no energy specs).

#include <fstream>
#include <iostream>
#include <memory>

#include "bench_common.hpp"

using namespace rme;

namespace {

fit::EnergyFit fit_platform(const bench::Platform& sp,
                            const bench::Platform& dp, unsigned jobs,
                            obs::Tracer* tracer) {
  std::vector<fit::EnergySample> samples;
  for (const bench::Platform* platform : {&sp, &dp}) {
    const Precision prec = platform == &sp ? Precision::kSingle
                                           : Precision::kDouble;
    const auto session = bench::make_session(*platform, 25);
    for (const auto& r :
         session.measure_sweep(bench::fig4_sweep(prec), jobs, tracer)) {
      fit::EnergySample s;
      s.flops = r.kernel.flops;
      s.bytes = r.kernel.bytes;
      s.seconds = Seconds{r.seconds.median};
      s.joules = Joules{r.joules.median};
      s.precision = prec;
      samples.push_back(s);
    }
  }
  return fit::fit_energy_coefficients(samples, fit::EnergyFitOptions{},
                                      tracer);
}

void print_fit(const char* label, const fit::EnergyFit& f, double eps_s,
               double eps_d, double eps_mem, double pi0,
               report::CsvWriter* csv) {
  if (csv) {
    const auto cell = [&](const char* name, double fitted, double p_value) {
      csv->write_row({label, name, report::fmt(fitted, 4),
                      report::fmt(p_value, 2),
                      report::fmt(f.regression.r_squared, 6)});
    };
    cell("eps_s_pJ_per_flop", f.coefficients.eps_single.value() / kPico,
         f.regression.by_name("eps_s").p_value);
    cell("eps_d_pJ_per_flop", f.coefficients.eps_double().value() / kPico,
         f.regression.by_name("delta_eps_d").p_value);
    cell("eps_mem_pJ_per_byte", f.coefficients.eps_mem.value() / kPico,
         f.regression.by_name("eps_mem").p_value);
    cell("pi0_W", f.coefficients.const_power.value(),
         f.regression.by_name("pi0").p_value);
  }
  std::cout << label << "\n";
  report::Table t({"Coefficient", "Paper (Table IV)", "Fitted here",
                   "p-value"});
  t.add_row({"eps_s [pJ/FLOP]", report::fmt(eps_s, 4),
             report::fmt(f.coefficients.eps_single.value() / kPico, 4),
             report::fmt(f.regression.by_name("eps_s").p_value, 2)});
  t.add_row({"eps_d [pJ/FLOP]", report::fmt(eps_d, 4),
             report::fmt(f.coefficients.eps_double().value() / kPico, 4),
             report::fmt(f.regression.by_name("delta_eps_d").p_value, 2)});
  t.add_row({"eps_mem [pJ/Byte]", report::fmt(eps_mem, 4),
             report::fmt(f.coefficients.eps_mem.value() / kPico, 4),
             report::fmt(f.regression.by_name("eps_mem").p_value, 2)});
  t.add_row({"pi0 [W]", report::fmt(pi0, 4),
             report::fmt(f.coefficients.const_power.value(), 4),
             report::fmt(f.regression.by_name("pi0").p_value, 2)});
  t.print(std::cout);
  std::cout << "R^2 = " << report::fmt(f.regression.r_squared, 6)
            << " (paper footnote 8: 'R^2 near unity at p-values below "
               "1e-14')\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::BenchObs bobs(args);
  std::ofstream csv_file;
  std::unique_ptr<report::CsvWriter> csv;
  if (!args.csv_path.empty()) {
    csv_file.open(args.csv_path);
    csv = std::make_unique<report::CsvWriter>(csv_file);
    csv->write_row({"platform", "coefficient", "fitted", "p_value",
                    "r_squared"});
  }

  bench::print_heading("Table IV: fitted energy coefficients (eq. 9)");

  // NOTE: the GTX 580 single-precision sweep crosses the 244 W board
  // cap near B_tau (Fig. 5b); those throttled points carry inflated
  // constant energy, which is exactly the real-measurement condition
  // the authors fit through.
  const fit::EnergyFit gpu =
      fit_platform(bench::gtx580_platform(Precision::kSingle),
                   bench::gtx580_platform(Precision::kDouble), args.jobs,
                   bobs.tracer());
  print_fit("NVIDIA GTX 580 (GPU-only power):", gpu, 99.7, 212.0, 513.0,
            122.0, csv.get());

  const fit::EnergyFit cpu =
      fit_platform(bench::i7_950_platform(Precision::kSingle),
                   bench::i7_950_platform(Precision::kDouble), args.jobs,
                   bobs.tracer());
  print_fit("Intel Core i7-950 (desktop):", cpu, 371.0, 670.0, 795.0, 122.0,
            csv.get());

  const bool csv_ok = bench::finish_csv(csv_file, args.csv_path);
  return bobs.finish() && csv_ok ? cli::kExitOk : cli::kExitDegraded;
}
