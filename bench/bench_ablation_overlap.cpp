// Ablation: overlapped time (eq. (1), T = max) vs a non-overlapping
// serial model (T = sum).  The paper's key structural asymmetry is that
// time overlaps while energy cannot (§II-B); this quantifies what the
// overlap assumption is worth and shows it is what creates the sharp
// roofline inflection.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"

using namespace rme;

int main() {
  bench::print_heading(
      "Ablation: overlapped (eq. 1) vs serial time model, Fermi Table II");

  const MachineParams m = presets::fermi_table2();
  report::Table t({"I (flop:B)", "T overlap (norm)", "T serial (norm)",
                   "overlap speedup", "E/T overlap [W/pf]",
                   "E/T serial [W/pf]"});
  for (double i : {0.25, 0.5, 1.0, 2.0, 3.58, 4.0, 8.0, 16.0, 64.0, 512.0}) {
    const KernelProfile k = KernelProfile::from_intensity(i, 1e9);
    const TimeBreakdown overlap = predict_time(m, k);
    const double serial = overlap.flops_seconds.value() + overlap.mem_seconds.value();
    const EnergyBreakdown e = predict_energy(m, k);  // energy is additive
    t.add_row({report::fmt(i, 4),
               report::fmt(overlap.total_seconds.value() / overlap.flops_seconds.value(), 4),
               report::fmt(serial / overlap.flops_seconds.value(), 4),
               report::fmt(serial / overlap.total_seconds.value(), 4),
               report::fmt(e.total_joules.value() /
                               overlap.total_seconds.value() /
                               m.flop_power().value(), 4),
               report::fmt(e.total_joules.value() / serial / m.flop_power().value(), 4)});
  }
  t.print(std::cout);

  std::cout
      << "\nObservations:\n"
         "  * overlap buys at most 2x, maximized exactly at I = B_tau ("
      << report::fmt(m.time_balance(), 3)
      << ");\n"
         "  * the serial model has no sharp inflection -- the roofline's "
         "kink comes from\n    the max() in eq. (1);\n"
         "  * energy is identical in both (it cannot be overlapped), so "
         "the serial model\n    draws less average power: eq. (8)'s peak "
         "P at I = B_tau is an overlap effect.\n";
  return 0;
}
