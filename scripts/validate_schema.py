#!/usr/bin/env python3
"""Validate a JSON document against a JSON Schema subset (stdlib only).

Usage: validate_schema.py <schema.json> <document.json>

CI uses this to hold `rme_analyze --format=json|sarif` to the checked-in
contracts under docs/schema/.  The container has no jsonschema package,
so this implements exactly the draft-07 subset those schemas use:

  type, const, enum, required, properties, additionalProperties,
  items, minItems, maxItems, minimum, minLength

Unknown keywords are an error, not a silent pass: a schema edit that
reaches for an unimplemented keyword must extend this validator too.
"""

import json
import sys

HANDLED = {
    "$schema", "title", "description",
    "type", "const", "enum", "required", "properties",
    "additionalProperties", "items", "minItems", "maxItems",
    "minimum", "minLength",
}


def type_ok(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    # bool is an int subclass in Python; JSON booleans are not integers.
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "null":
        return value is None
    raise ValueError(f"unsupported type keyword: {expected!r}")


def validate(value, schema, path, errors):
    unknown = set(schema) - HANDLED
    if unknown:
        raise ValueError(
            f"schema at {path or '$'} uses unimplemented keywords: "
            f"{sorted(unknown)}")

    loc = path or "$"
    if "type" in schema and not type_ok(value, schema["type"]):
        errors.append(f"{loc}: expected {schema['type']}, "
                      f"got {type(value).__name__}")
        return
    if "const" in schema and value != schema["const"]:
        errors.append(f"{loc}: expected constant {schema['const']!r}, "
                      f"got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{loc}: {value!r} not one of {schema['enum']!r}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{loc}: missing required property {key!r}")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in value:
                validate(value[key], sub, f"{loc}.{key}", errors)
        if schema.get("additionalProperties", True) is False:
            for key in value:
                if key not in props:
                    errors.append(f"{loc}: unexpected property {key!r}")

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{loc}: {len(value)} items < "
                          f"minItems {schema['minItems']}")
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            errors.append(f"{loc}: {len(value)} items > "
                          f"maxItems {schema['maxItems']}")
        if "items" in schema:
            for i, item in enumerate(value):
                validate(item, schema["items"], f"{loc}[{i}]", errors)

    if isinstance(value, str):
        if "minLength" in schema and len(value) < schema["minLength"]:
            errors.append(f"{loc}: string shorter than "
                          f"minLength {schema['minLength']}")

    if (isinstance(value, (int, float)) and not isinstance(value, bool)
            and "minimum" in schema and value < schema["minimum"]):
        errors.append(f"{loc}: {value} < minimum {schema['minimum']}")


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as fh:
        schema = json.load(fh)
    with open(argv[2], encoding="utf-8") as fh:
        document = json.load(fh)
    errors = []
    validate(document, schema, "", errors)
    if errors:
        for err in errors:
            print(f"schema violation: {err}", file=sys.stderr)
        print(f"{argv[2]}: {len(errors)} violation(s) against {argv[1]}",
              file=sys.stderr)
        return 1
    print(f"{argv[2]}: valid against {argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
