#!/usr/bin/env bash
# CI driver: build and test the repository twice — a plain release build
# (warnings-as-errors) and an ASan+UBSan build (RME_SANITIZE=ON) —
# failing on any test failure, sanitizer report, warning, or
# dimensional-safety lint finding.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== plain build (RME_WERROR=ON) ==="
cmake -B build -G Ninja -DRME_WERROR=ON
cmake --build build
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo
echo "=== dimensional-safety lint ==="
./build/tools/rme_lint src

echo
echo "=== clang-tidy ==="
if command -v clang-tidy >/dev/null 2>&1; then
  # Headers are covered transitively via HeaderFilterRegex in .clang-tidy.
  cmake -B build -G Ninja -DRME_WERROR=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  git ls-files 'src/rme/**/*.cpp' | xargs clang-tidy -p build --quiet
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

echo
echo "=== sanitized build (ASan + UBSan) ==="
cmake -B build-asan -G Ninja -DRME_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build build-asan
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo
echo "CI OK: plain (Werror), lint, and sanitized suites passed."
