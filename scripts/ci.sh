#!/usr/bin/env bash
# CI driver: build and test the repository three times — a plain release
# build (warnings-as-errors), an ASan+UBSan build (RME_SANITIZE=ON), and
# a TSan build (RME_SANITIZE=thread) running the threaded suites —
# failing on any test failure, sanitizer report, warning, or
# rme_analyze static-analysis finding.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== plain build (RME_WERROR=ON) ==="
cmake -B build -G Ninja -DRME_WERROR=ON
cmake --build build
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo
echo "=== static analysis (rme_analyze) ==="
# rme_analyze replaced the old rme_lint in PR 4: comment/string-aware
# lexing, seven rules, and scoped reasoned suppressions, run over the
# whole tree (the old tool scanned headers under src/ only).
./build/tools/rme_analyze src tools bench tests

echo
echo "=== observability: traced bench run ==="
# Tracing must be a pure observer: run a figure bench with and without
# --trace, byte-diff the CSVs, and validate the trace as JSON.
obs_dir=$(mktemp -d)
./build/bench/bench_fig4_intensity_sweep --jobs 4 \
  --csv "$obs_dir/plain.csv" > /dev/null
./build/bench/bench_fig4_intensity_sweep --jobs 4 \
  --csv "$obs_dir/traced.csv" --trace "$obs_dir/trace.json" --metrics \
  > /dev/null 2> "$obs_dir/metrics.txt"
diff "$obs_dir/plain.csv" "$obs_dir/traced.csv"
grep -q "== rme::obs metrics" "$obs_dir/metrics.txt"
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$obs_dir/trace.json" > /dev/null
  echo "trace JSON valid ($(wc -c < "$obs_dir/trace.json") bytes)"
else
  echo "python3 not installed; skipping JSON validation of trace output"
fi
rm -rf "$obs_dir"

echo
echo "=== format check (clang-format) ==="
if command -v clang-format >/dev/null 2>&1; then
  git ls-files '*.cpp' '*.hpp' | xargs clang-format --dry-run --Werror
else
  echo "clang-format not installed; skipping (config: .clang-format)"
fi

echo
echo "=== clang-tidy ==="
if command -v clang-tidy >/dev/null 2>&1; then
  # Headers are covered transitively via HeaderFilterRegex in .clang-tidy.
  cmake -B build -G Ninja -DRME_WERROR=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  git ls-files 'src/rme/**/*.cpp' | xargs clang-tidy -p build --quiet
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

echo
echo "=== sanitized build (ASan + UBSan) ==="
cmake -B build-asan -G Ninja -DRME_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build build-asan
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo
echo "=== crash safety: chaos/resume suite under ASan ==="
# The chaos harness kills real rme_cli subprocesses at 36 seeded record
# boundaries (plain and torn-append), truncates and byte-flips the
# journal, then resumes — byte-diffing artifact and CSV against the
# uninterrupted golden.  test_artifact additionally pins the checked-in
# fixtures (tests/golden/session_i7.rmea / .csv) for format stability.
# The full ctest pass above already ran these; this explicit re-run
# serializes them with verbose output so a crash-recovery regression is
# unmistakable in the CI log, and exercises every recovery path —
# torn-tail truncation, resume, replay, corruption refusal — under ASan.
ctest --test-dir build-asan --output-on-failure \
      -R '^(ChaosTest|Artifact|Framing|Crc32|Json|Golden)\.'

echo
echo "=== sanitized build (TSan) ==="
# Races hide in the rme::exec pool and its call sites, so TSan runs the
# suites that actually spawn workers: the pool itself, the parallel
# bootstrap, the threaded session sweep, and the threaded FMM variants.
# Bench and examples are serial deliverables already covered above.
cmake -B build-tsan -G Ninja -DRME_SANITIZE=thread -DCMAKE_BUILD_TYPE=Debug \
      -DRME_BUILD_BENCH=OFF -DRME_BUILD_EXAMPLES=OFF
cmake --build build-tsan --target test_exec test_bootstrap test_ubench \
      test_session test_fmm_kernels
for t in test_exec test_bootstrap test_ubench test_session test_fmm_kernels; do
  ./build-tsan/tests/"$t"
done

echo
echo "CI OK: plain (Werror), analysis, ASan+UBSan, and TSan suites passed."
