#!/usr/bin/env bash
# CI driver: build and test the repository four times — a plain release
# build (warnings-as-errors), an ASan+UBSan build (RME_SANITIZE=ON), a
# pure-UBSan build (RME_SANITIZE=undefined), and a TSan build
# (RME_SANITIZE=thread) running the threaded suites — failing on any
# test failure, sanitizer report, warning, unbaselined rme_analyze
# finding, or analyzer output that breaks its JSON/SARIF schema.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== plain build (RME_WERROR=ON) ==="
cmake -B build -G Ninja -DRME_WERROR=ON
cmake --build build
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo
echo "=== static analysis (rme_analyze, cross-TU, parallel) ==="
# The cross-TU engine: seven per-file rules plus layering, lock-order,
# the hot-path family (call graph from rme-hot roots), and
# wire-error-exhaustiveness, run parallel with the checked-in baseline
# (tools/analyze_baseline.txt).  Any finding not in the baseline fails
# CI; shrink the baseline as debt is paid down.
./build/tools/rme_analyze --jobs=0 \
  --baseline=tools/analyze_baseline.txt src tools bench tests

echo
echo "=== analyzer throughput (bench_analyze) ==="
# ROADMAP item 5 trajectory: time the full-tree run and hold the
# call-graph family to <= 25% overhead at jobs=1 (the acceptance bound
# pinned by the committed bench/golden/BENCH_analyze.json snapshot).
bench_dir=$(mktemp -d)
./build/bench/bench_analyze --jobs 4 --json "$bench_dir/BENCH_analyze.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$bench_dir/BENCH_analyze.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
overhead = report["callgraph_overhead_pct_jobs1"]
assert overhead <= 25.0, f"call-graph overhead {overhead}% > 25%"
print(f"call-graph overhead {overhead}% (bound: 25%)")
PY
else
  echo "python3 not installed; skipping overhead bound check"
fi
rm -rf "$bench_dir"

echo
echo "=== model-evaluation throughput (bench_model) ==="
# ROADMAP item 5 acceptance: the committed snapshot must show the
# batch/SoA evaluator at >= 5x the scalar path at jobs=1 (pinned by
# bench/golden/BENCH_model.json; regenerate with
# scripts/regen_bench_golden.sh).  The fresh run is gated looser —
# shared CI hosts add tens of percent of timing noise — but 3.5x and
# the 2x-of-golden ns/op ceiling still separate a real regression
# (the pre-batch path plateaued near 1.9x) from a noisy neighbor.
model_dir=$(mktemp -d)
./build/bench/bench_model --jobs 4 --repeats 7 \
  --json "$model_dir/BENCH_model.json"
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/validate_schema.py \
    docs/schema/bench_model.schema.json bench/golden/BENCH_model.json
  python3 scripts/validate_schema.py \
    docs/schema/bench_model.schema.json "$model_dir/BENCH_model.json"
  python3 - bench/golden/BENCH_model.json "$model_dir/BENCH_model.json" <<'PY'
import json, sys
golden = json.load(open(sys.argv[1]))
fresh = json.load(open(sys.argv[2]))
gold_speedup = golden["batch_speedup_jobs1"]
assert gold_speedup >= 5.0, \
    f"committed golden batch_speedup_jobs1 {gold_speedup} < 5.0"
speedup = fresh["batch_speedup_jobs1"]
assert speedup >= 3.5, f"fresh batch_speedup_jobs1 {speedup} < 3.5"
batch_ns = fresh["model_eval_batch_ns_per_op_jobs1"]
ceiling = 2.0 * golden["model_eval_batch_ns_per_op_jobs1"]
assert batch_ns <= ceiling, \
    f"batch eval {batch_ns} ns/op > 2x golden ({ceiling} ns/op)"
print(f"batch eval {batch_ns} ns/op, speedup {speedup}x "
      f"(golden {gold_speedup}x, gates: >= 3.5x fresh, >= 5x golden)")
PY
else
  echo "python3 not installed; skipping model throughput gates"
fi
rm -rf "$model_dir"

echo
echo "=== analyzer output contracts (JSON + SARIF schemas) ==="
# Both machine formats must validate against the checked-in schemas —
# the emitter cannot drift without a reviewed schema change.
an_dir=$(mktemp -d)
./build/tools/rme_analyze --jobs=0 --format=json \
  src tools bench tests > "$an_dir/report.json" || true
./build/tools/rme_analyze --jobs=0 --format=sarif \
  src tools bench tests > "$an_dir/report.sarif" || true
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/validate_schema.py \
    docs/schema/rme_analyze.schema.json "$an_dir/report.json"
  python3 scripts/validate_schema.py \
    docs/schema/sarif-2.1.0-subset.schema.json "$an_dir/report.sarif"
else
  echo "python3 not installed; skipping schema validation"
fi
# Negative test: a hot-path finding must flow through both machine
# formats and still validate — proving the schemas cover the new rule
# family, not just the clean-tree shape.
neg_tree="$an_dir/neg/src/rme/exec"
mkdir -p "$neg_tree"
cat > "$neg_tree/hot.cpp" <<'EOF'
#include <string>
// rme-hot: negative-test root
std::string f(int i) {
  std::string s = "x" + std::to_string(i);
  return s;
}
EOF
if ./build/tools/rme_analyze --format=json "$an_dir/neg" \
    > "$an_dir/neg.json"; then
  echo "expected a hot-path finding"; exit 1
fi
if ./build/tools/rme_analyze --format=sarif "$an_dir/neg" \
    > "$an_dir/neg.sarif"; then
  echo "expected a hot-path finding"; exit 1
fi
grep -q '"rule":"alloc-in-hot-path"' "$an_dir/neg.json"
grep -q '"ruleId":"alloc-in-hot-path"' "$an_dir/neg.sarif"
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/validate_schema.py \
    docs/schema/rme_analyze.schema.json "$an_dir/neg.json"
  python3 scripts/validate_schema.py \
    docs/schema/sarif-2.1.0-subset.schema.json "$an_dir/neg.sarif"
fi
rm -rf "$an_dir"

echo
echo "=== observability: traced bench run ==="
# Tracing must be a pure observer: run a figure bench with and without
# --trace, byte-diff the CSVs, and validate the trace as JSON.
obs_dir=$(mktemp -d)
./build/bench/bench_fig4_intensity_sweep --jobs 4 \
  --csv "$obs_dir/plain.csv" > /dev/null
./build/bench/bench_fig4_intensity_sweep --jobs 4 \
  --csv "$obs_dir/traced.csv" --trace "$obs_dir/trace.json" --metrics \
  > /dev/null 2> "$obs_dir/metrics.txt"
diff "$obs_dir/plain.csv" "$obs_dir/traced.csv"
grep -q "== rme::obs metrics" "$obs_dir/metrics.txt"
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$obs_dir/trace.json" > /dev/null
  echo "trace JSON valid ($(wc -c < "$obs_dir/trace.json") bytes)"
else
  echo "python3 not installed; skipping JSON validation of trace output"
fi
rm -rf "$obs_dir"

echo
echo "=== format check (clang-format) ==="
if command -v clang-format >/dev/null 2>&1; then
  git ls-files '*.cpp' '*.hpp' | xargs clang-format --dry-run --Werror
else
  echo "clang-format not installed; skipping (config: .clang-format)"
fi

echo
echo "=== clang-tidy ==="
if command -v clang-tidy >/dev/null 2>&1; then
  # Headers are covered transitively via HeaderFilterRegex in .clang-tidy.
  cmake -B build -G Ninja -DRME_WERROR=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  git ls-files 'src/rme/**/*.cpp' | xargs clang-tidy -p build --quiet
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

echo
echo "=== sanitized build (ASan + UBSan) ==="
cmake -B build-asan -G Ninja -DRME_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build build-asan
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo
echo "=== static analysis gate under ASan ==="
# Re-run the full analyzer gate (call graph and hot-path rules
# included) with the instrumented binary: a lexer/call-graph/cache
# heap bug fails here even when the findings themselves are clean.
./build-asan/tools/rme_analyze --jobs=0 \
  --baseline=tools/analyze_baseline.txt src tools bench tests

echo
echo "=== crash safety: chaos/resume suite under ASan ==="
# The chaos harness kills real rme_cli subprocesses at 36 seeded record
# boundaries (plain and torn-append), truncates and byte-flips the
# journal, then resumes — byte-diffing artifact and CSV against the
# uninterrupted golden.  test_artifact additionally pins the checked-in
# fixtures (tests/golden/session_i7.rmea / .csv) for format stability.
# The full ctest pass above already ran these; this explicit re-run
# serializes them with verbose output so a crash-recovery regression is
# unmistakable in the CI log, and exercises every recovery path —
# torn-tail truncation, resume, replay, corruption refusal — under ASan.
ctest --test-dir build-asan --output-on-failure \
      -R '^(ChaosTest|Artifact|Framing|Crc32|Json|Golden)\.'

echo
echo "=== serve daemon: conformance corpus + soak (plain and ASan) ==="
# The protocol-conformance corpus (tests/serve/*.req pinned to golden
# .resp byte-for-byte), the transport/jobs determinism proofs, and the
# 10k-request soak all live in test_serve; the full ctest passes above
# already ran them in both builds.  This explicit re-run serializes
# them with verbose output so a protocol regression is unmistakable in
# the CI log, then pushes a larger seeded load mix through the real
# serve path — pipe transport, arena reuse, ingest generation bumps —
# under ASan, where a leak or overflow in the per-connection arena or
# the frame reader would surface.
ctest --test-dir build --output-on-failure \
      -R '^(Serve|Corpus/|CoefficientScan)'
./build-asan/bench/bench_serve_load --requests 5000 --jobs 4 > /dev/null
serve_dir=$(mktemp -d)
./build/bench/bench_serve_load --requests 2000 --csv "$serve_dir/a.csv" \
  > /dev/null
./build-asan/bench/bench_serve_load --requests 2000 \
  --csv "$serve_dir/b.csv" > /dev/null
diff "$serve_dir/a.csv" "$serve_dir/b.csv"
rm -rf "$serve_dir"

echo
echo "=== sanitized build (UBSan alone) ==="
# UBSan without ASan: shadow memory changes allocation patterns and can
# mask the UB it rides along with, and the uninstrumented-address build
# is close enough to production codegen that alignment/overflow traps
# here mean they are real.  Fast enough to run the full suite.
cmake -B build-ubsan -G Ninja -DRME_SANITIZE=undefined \
      -DCMAKE_BUILD_TYPE=Debug
cmake --build build-ubsan
ctest --test-dir build-ubsan --output-on-failure -j "$(nproc)"

echo
echo "=== sanitized build (TSan) ==="
# Races hide in the rme::exec pool and its call sites, so TSan runs the
# suites that actually spawn workers: the pool itself, the parallel
# bootstrap, the threaded session sweep, and the threaded FMM variants.
# Bench and examples are serial deliverables already covered above.
cmake -B build-tsan -G Ninja -DRME_SANITIZE=thread -DCMAKE_BUILD_TYPE=Debug \
      -DRME_BUILD_BENCH=OFF -DRME_BUILD_EXAMPLES=OFF
cmake --build build-tsan --target test_exec test_bootstrap test_ubench \
      test_session test_fmm_kernels
for t in test_exec test_bootstrap test_ubench test_session test_fmm_kernels; do
  ./build-tsan/tests/"$t"
done

echo
echo "CI OK: plain (Werror), analysis + schemas, ASan+UBSan, UBSan," \
     "and TSan suites passed."
