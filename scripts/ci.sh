#!/usr/bin/env bash
# CI driver: build and test the repository twice — a plain release build
# and an ASan+UBSan build (RME_SANITIZE=ON) — failing on any test
# failure or sanitizer report.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== plain build ==="
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo
echo "=== sanitized build (ASan + UBSan) ==="
cmake -B build-asan -G Ninja -DRME_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build build-asan
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo
echo "CI OK: plain and sanitized suites passed."
