#!/usr/bin/env bash
# Full reproduction driver: configure, build, test, and regenerate every
# table and figure, capturing outputs at the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Run every bench even if one fails, then exit nonzero if any did.
faillog=$(mktemp)
trap 'rm -f "$faillog"' EXIT
{
  for b in build/bench/*; do
    echo
    echo "################################################################"
    echo "### $b"
    echo "################################################################"
    "$b" || echo "$b" >> "$faillog"
  done
} 2>&1 | tee bench_output.txt

if [ -s "$faillog" ]; then
  echo
  echo "FAILED benches:" >&2
  cat "$faillog" >&2
  exit 1
fi

echo
echo "Done. Tests: test_output.txt  Benches: bench_output.txt"
