#!/usr/bin/env bash
# Full reproduction driver: configure, build, test, and regenerate every
# table and figure, capturing outputs at the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    echo
    echo "################################################################"
    echo "### $b"
    echo "################################################################"
    "$b"
  done
} 2>&1 | tee bench_output.txt

echo
echo "Done. Tests: test_output.txt  Benches: bench_output.txt"
