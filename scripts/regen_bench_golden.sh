#!/usr/bin/env bash
# Regenerates the committed perf snapshots under bench/golden/:
#
#   BENCH_analyze.json — analyzer throughput over the real tree
#   BENCH_model.json   — the five hot model kernels (docs/PERF.md)
#
# Run from a quiet machine after a Release build; the snapshots pin the
# perf trajectory (ROADMAP item 5) and scripts/ci.sh gates against them
# (batch-vs-scalar speedup >= 5x, call-graph overhead <= 25%), so
# re-review the diff before committing — a slower snapshot IS a perf
# regression landing in review.  Repeats are best-of: more repeats
# tighten the estimate on a shared/noisy host.
set -euo pipefail

cd "$(dirname "$0")/.."

build=${BUILD_DIR:-build}
repeats=${REPEATS:-11}
jobs=${JOBS:-4}

if [[ ! -x "$build/bench/bench_model" || ! -x "$build/bench/bench_analyze" ]]; then
  echo "error: $build/bench binaries missing — build first:" >&2
  echo "  cmake -B $build && cmake --build $build -j" >&2
  exit 1
fi

echo "== bench_model (jobs=$jobs, repeats=$repeats) =="
"$build/bench/bench_model" --jobs "$jobs" --repeats "$repeats" \
  --json bench/golden/BENCH_model.json

echo
echo "== bench_analyze (jobs=$jobs) =="
"$build/bench/bench_analyze" --jobs "$jobs" \
  --json bench/golden/BENCH_analyze.json

echo
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/validate_schema.py \
    docs/schema/bench_model.schema.json bench/golden/BENCH_model.json
  python3 - bench/golden/BENCH_model.json <<'PY'
import json, sys
speedup = json.load(open(sys.argv[1]))["batch_speedup_jobs1"]
if speedup < 5.0:
    sys.exit(f"batch_speedup_jobs1 = {speedup} < 5.0: rerun on a quiet "
             "machine (the committed snapshot must hold the acceptance "
             "bound, see docs/PERF.md)")
print(f"batch_speedup_jobs1 = {speedup} (bound: >= 5.0)")
PY
fi
git --no-pager diff --stat bench/golden/ || true
